"""Golden equivalence: the hot-path fast lanes must not change physics.

The TX-engine packet-train collapse (``MachineConfig.fast_trains``), the
switch route cache, and the ``call_at`` fast timers are pure simulator
optimizations: every virtual-time observable -- completion times,
bandwidths, per-subsystem metrics -- must be identical with them on or
off.  These tests run the same workload under both settings and compare
the full metrics render, and pin down each condition that must disengage
the train fast path (loss, core jitter, multiple routes, non-contiguous
vectors).
"""

import pytest

from repro.machine import Cluster
from repro.machine.config import SP_1998
from repro.machine.routing import Topology
from repro.machine.switch import Switch
from repro.sim import RngRegistry, Simulator

NBYTES = 262144  # enough packets for several trains


def _put_job(nbytes, target):
    def main(task):
        lapi = task.lapi
        mem = task.memory
        buf = mem.malloc(nbytes)
        yield from lapi.gfence()
        if task.rank == 0:
            src = mem.malloc(nbytes)
            cmpl = lapi.counter()
            yield from lapi.put(target, nbytes, buf, src,
                                cmpl_cntr=cmpl)
            yield from lapi.waitcntr(cmpl, 1)
        yield from lapi.gfence()
    return main


def _putv_job(nbytes, target, stride=4096, run_len=1024):
    def main(task):
        lapi = task.lapi
        mem = task.memory
        buf = mem.malloc(nbytes)
        yield from lapi.gfence()
        if task.rank == 0:
            src = mem.malloc(nbytes)
            cmpl = lapi.counter()
            runs = [(buf + off, src + off, run_len)
                    for off in range(0, nbytes - run_len, stride)]
            yield from lapi.putv(target, runs, cmpl_cntr=cmpl)
            yield from lapi.waitcntr(cmpl, 1)
        yield from lapi.gfence()
    return main


def _run(config, job, nnodes=2, seed=0xFA57):
    cluster = Cluster(nnodes=nnodes, config=config, seed=seed)
    cluster.run_job(job, stacks=("lapi",), interrupt_mode=False)
    return cluster


def _train_packets(cluster):
    return sum(n.adapter.train_packets for n in cluster.nodes)


def _assert_equivalent(config, job, nnodes=2):
    """Same job under fast_trains on/off: identical physics."""
    fast = _run(config.replace(fast_trains=True), job, nnodes)
    slow = _run(config.replace(fast_trains=False), job, nnodes)
    assert fast.sim.now == slow.sim.now
    assert fast.metrics.render() == slow.metrics.render()
    assert _train_packets(slow) == 0
    return fast


class TestTrainEquivalence:
    def test_same_group_put_identical_and_engaged(self):
        fast = _assert_equivalent(SP_1998, _put_job(NBYTES, 1))
        # The clean 2-node put is the canonical train workload; if it
        # does not engage, the fast path is dead code.
        assert _train_packets(fast) > 0

    def test_lossy_config_falls_back(self):
        cfg = SP_1998.replace(loss_rate=0.02)
        fast = _assert_equivalent(cfg, _put_job(NBYTES, 1))
        assert _train_packets(fast) == 0

    def test_core_jitter_falls_back(self):
        # group_size=1 puts the two nodes in different groups;
        # mid_count=1 keeps a single route, so only the jitter gate can
        # (and must) disengage the train.
        cfg = SP_1998.replace(switch_group_size=1, switch_mid_count=1)
        assert cfg.route_jitter > 0.0
        fast = _assert_equivalent(cfg, _put_job(NBYTES, 1))
        assert _train_packets(fast) == 0

    def test_multi_route_falls_back(self):
        cfg = SP_1998.replace(switch_group_size=1, route_jitter=0.0)
        assert cfg.switch_mid_count > 1
        fast = _assert_equivalent(cfg, _put_job(NBYTES, 1))
        assert _train_packets(fast) == 0

    def test_jitter_free_single_route_core_engages(self):
        # Complement of the two fallbacks above: one core route and no
        # jitter is train-eligible even across groups.
        cfg = SP_1998.replace(switch_group_size=1, switch_mid_count=1,
                              route_jitter=0.0)
        fast = _assert_equivalent(cfg, _put_job(NBYTES, 1))
        assert _train_packets(fast) > 0

    def test_noncontiguous_putv_falls_back(self):
        fast = _assert_equivalent(SP_1998, _putv_job(NBYTES, 1))
        assert _train_packets(fast) == 0


class TestRouteCache:
    def _switch(self, nnodes=8, config=SP_1998):
        return Switch(Simulator(), nnodes, config, RngRegistry(seed=7))

    def test_cache_matches_direct_topology_routes(self):
        sw = self._switch()
        topo = Topology.build(8, SP_1998)
        for src in range(8):
            for dst in range(8):
                if src == dst:
                    continue
                cached = sw.route_candidates(src, dst)
                direct = topo.routes(src, dst, SP_1998)
                assert len(cached) == len(direct)
                for c, d in zip(cached, direct):
                    assert c.fixed_latency == d.fixed_latency
                    assert c.crosses_core == d.crosses_core
                    assert tuple(ln.name for ln in c.links) == \
                        tuple(ln.name for ln in d.links)

    def test_cache_hit_returns_same_tuple(self):
        sw = self._switch()
        assert sw.route_candidates(0, 5) is sw.route_candidates(0, 5)

    def test_route_counts(self):
        sw = self._switch()
        assert len(sw.route_candidates(0, 1)) == 1  # same group
        assert len(sw.route_candidates(0, 5)) == \
            SP_1998.switch_mid_count  # cross-group


class TestPerfHarnessPlumbing:
    def test_capture_retains_clusters_without_metrics(self):
        from repro.bench import runner
        runner.configure_observability(capture=True)
        try:
            c = runner.fresh_cluster(2)
            assert runner.captured_clusters() == [c]
            assert c.trace is None
        finally:
            runner.configure_observability()

    def test_timeout_at_wakes_at_exact_float(self):
        sim = Simulator()
        woke = []

        def proc():
            yield sim.timeout(1.1)
            # A target where now + (target - now) != target, the ulp
            # drift timeout_at() exists to avoid.
            target = 5.55
            assert sim.now + (target - sim.now) != target
            yield sim.timeout_at(target)
            woke.append(sim.now)
            assert sim.now == target

        sim.process(proc())
        sim.run()
        assert woke
