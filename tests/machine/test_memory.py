"""Unit and property tests for the simulated node memory."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AllocationError, MemoryFault
from repro.machine.memory import Memory


@pytest.fixture
def mem():
    return Memory(node_id=0)


class TestAllocation:
    def test_malloc_returns_distinct_addresses(self, mem):
        a = mem.malloc(100)
        b = mem.malloc(100)
        assert a != b

    def test_malloc_zero_or_negative_rejected(self, mem):
        with pytest.raises(AllocationError):
            mem.malloc(0)
        with pytest.raises(AllocationError):
            mem.malloc(-5)

    def test_malloc_over_cap_rejected(self):
        mem = Memory(0, max_allocation=1024)
        with pytest.raises(AllocationError):
            mem.malloc(2048)

    def test_fill(self, mem):
        a = mem.malloc(4, fill=0xAB)
        assert mem.read(a, 4) == b"\xab\xab\xab\xab"

    def test_free_releases(self, mem):
        a = mem.malloc(64)
        assert mem.live_bytes == 64
        mem.free(a)
        assert mem.live_bytes == 0
        with pytest.raises(MemoryFault):
            mem.read(a, 1)

    def test_free_interior_pointer_rejected(self, mem):
        a = mem.malloc(64)
        with pytest.raises(MemoryFault):
            mem.free(a + 8)

    def test_double_free_rejected(self, mem):
        a = mem.malloc(64)
        mem.free(a)
        with pytest.raises(MemoryFault):
            mem.free(a)

    def test_size_of(self, mem):
        a = mem.malloc(100)
        assert mem.size_of(a) == 100
        assert mem.size_of(a + 30) == 70


class TestAccess:
    def test_write_read_roundtrip(self, mem):
        a = mem.malloc(16)
        mem.write(a, b"hello world!")
        assert mem.read(a, 12) == b"hello world!"

    def test_interior_write_read(self, mem):
        a = mem.malloc(16)
        mem.write(a + 4, b"abcd")
        assert mem.read(a + 4, 4) == b"abcd"
        assert mem.read(a, 4) == b"\x00" * 4

    def test_out_of_bounds_read_faults(self, mem):
        a = mem.malloc(8)
        with pytest.raises(MemoryFault):
            mem.read(a, 9)
        with pytest.raises(MemoryFault):
            mem.read(a + 8, 1)

    def test_out_of_bounds_write_faults(self, mem):
        a = mem.malloc(8)
        with pytest.raises(MemoryFault):
            mem.write(a + 4, b"12345")

    def test_unmapped_address_faults(self, mem):
        with pytest.raises(MemoryFault):
            mem.read(12345, 1)

    def test_cross_allocation_arithmetic_faults(self, mem):
        a = mem.malloc(8)
        mem.malloc(8)
        # Walking off the end of allocation "a" must not reach "b".
        with pytest.raises(MemoryFault):
            mem.read(a + 8, 8)


class TestViews:
    def test_view_aliases_memory(self, mem):
        a = mem.malloc(32)
        v = mem.view(a, 32, dtype=np.float64)
        v[:] = [1.0, 2.0, 3.0, 4.0]
        back = np.frombuffer(mem.read(a, 32), dtype=np.float64)
        assert list(back) == [1.0, 2.0, 3.0, 4.0]

    def test_view_sees_writes(self, mem):
        a = mem.malloc(8)
        v = mem.view(a, 8, dtype=np.int64)
        mem.write_i64(a, 77)
        assert v[0] == 77

    def test_view_itemsize_mismatch_faults(self, mem):
        a = mem.malloc(10)
        with pytest.raises(MemoryFault):
            mem.view(a, 10, dtype=np.float64)

    def test_raw_view_default(self, mem):
        a = mem.malloc(4, fill=7)
        v = mem.view(a, 4)
        assert v.dtype == np.uint8
        assert list(v) == [7, 7, 7, 7]


class TestWordAccess:
    def test_i64_roundtrip(self, mem):
        a = mem.malloc(16)
        mem.write_i64(a, -123456789)
        assert mem.read_i64(a) == -123456789

    def test_i64_offset(self, mem):
        a = mem.malloc(16)
        mem.write_i64(a + 8, 42)
        assert mem.read_i64(a + 8) == 42
        assert mem.read_i64(a) == 0

    def test_i64_unaligned_offset_works(self, mem):
        # Simulated memory has no alignment restrictions.
        a = mem.malloc(16)
        mem.write_i64(a + 3, 0x0102030405060708)
        assert mem.read_i64(a + 3) == 0x0102030405060708

    def test_i64_out_of_bounds(self, mem):
        a = mem.malloc(8)
        with pytest.raises(MemoryFault):
            mem.read_i64(a + 1)


class TestProperties:
    @given(st.lists(st.binary(min_size=1, max_size=256), min_size=1,
                    max_size=20))
    def test_independent_allocations_never_interfere(self, blobs):
        mem = Memory(0)
        addrs = []
        for blob in blobs:
            a = mem.malloc(len(blob))
            mem.write(a, blob)
            addrs.append(a)
        for a, blob in zip(addrs, blobs):
            assert mem.read(a, len(blob)) == blob

    @given(st.binary(min_size=1, max_size=512),
           st.data())
    def test_partial_writes_compose(self, base, data):
        mem = Memory(0)
        a = mem.malloc(len(base))
        mem.write(a, base)
        expected = bytearray(base)
        for _ in range(data.draw(st.integers(0, 8))):
            off = data.draw(st.integers(0, len(base) - 1))
            chunk = data.draw(st.binary(min_size=1,
                                        max_size=len(base) - off))
            mem.write(a + off, chunk)
            expected[off:off + len(chunk)] = chunk
        assert mem.read(a, len(base)) == bytes(expected)
