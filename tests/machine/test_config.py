"""Unit tests for the machine calibration table."""

import pytest

from repro.machine.config import SP_1998, MachineConfig


class TestDerivedQuantities:
    def test_lapi_payload(self):
        assert SP_1998.lapi_payload == SP_1998.packet_size - 48

    def test_mpl_payload(self):
        assert SP_1998.mpl_payload == SP_1998.packet_size - 16

    def test_lapi_header_larger_than_mpi(self):
        # Section 4: the one-sided header carries target-side parameters.
        assert SP_1998.lapi_header > SP_1998.mpl_header

    def test_am_uhdr_payload_around_900(self):
        # Section 5.3.1: "around 900 bytes to the application".
        assert 800 <= SP_1998.am_uhdr_payload <= 1000

    def test_copy_cost_monotone(self):
        assert SP_1998.copy_cost(0) == 0.0
        assert SP_1998.copy_cost(1) < SP_1998.copy_cost(1024)
        assert SP_1998.copy_cost(1024) < SP_1998.copy_cost(1 << 20)

    def test_copy_cost_asymptotic_bandwidth(self):
        n = 64 * 1024 * 1024
        eff = n / SP_1998.copy_cost(n)
        assert abs(eff - SP_1998.cpu_copy_bandwidth) / \
            SP_1998.cpu_copy_bandwidth < 0.01

    def test_daxpy_slower_than_copy(self):
        n = 1 << 20
        assert SP_1998.daxpy_cost(n) > SP_1998.copy_cost(n)

    def test_memcpy_faster_than_link(self):
        # The wire must be the asymptotic bottleneck, not the CPU,
        # or Figure 2's header-ratio analysis would not apply.
        assert SP_1998.cpu_copy_bandwidth > 2 * SP_1998.link_bandwidth


class TestReplaceAndValidate:
    def test_replace_returns_new_config(self):
        alt = SP_1998.replace(lapi_header=16)
        assert alt.lapi_header == 16
        assert SP_1998.lapi_header == 48
        assert isinstance(alt, MachineConfig)

    def test_frozen(self):
        with pytest.raises(Exception):
            SP_1998.lapi_header = 12  # type: ignore[misc]

    @pytest.mark.parametrize("changes", [
        {"packet_size": 32},
        {"lapi_uhdr_max": 100000},
        {"loss_rate": 1.5},
        {"loss_rate": -0.1},
        {"link_bandwidth": 0.0},
        {"cpu_copy_bandwidth": -1.0},
        {"switch_group_size": 0},
        {"switch_mid_count": 0},
        {"mpl_eager_limit": 1 << 20},
        {"lapi_retrans_timeout": 0.0},
        {"lapi_retrans_timeout": float("inf")},
        {"mpl_retrans_timeout": -5.0},
        {"mpl_retrans_timeout": float("nan")},
        {"lapi_window": 0},
        {"mpl_window": -1},
        {"rto_min": 0.0},
        {"rto_min": 500.0, "rto_max": 100.0},
        {"rto_max": float("inf")},
        {"rto_backoff": 0.5},
        {"rto_backoff": float("inf")},
        {"peer_degraded_after": 0},
    ])
    def test_validate_rejects_nonsense(self, changes):
        with pytest.raises(ValueError):
            SP_1998.replace(**changes).validate()

    def test_default_is_valid(self):
        SP_1998.validate()

    def test_interrupt_mode_premium_exists(self):
        # Table 2 requires interrupt round-trips to cost visibly more
        # than polling; the premium must be a real constant.
        assert SP_1998.interrupt_latency > 5 * SP_1998.poll_check_cost

    def test_rcvncall_context_dominates_interrupt(self):
        # Section 5.2: AIX handler-context creation dwarfs the base
        # interrupt cost and explains MPL's 200us round-trip.
        assert SP_1998.rcvncall_context_cost > SP_1998.interrupt_latency
