"""Unit tests for the node CPU thread model."""

import pytest

from repro.errors import MachineError
from repro.machine import HANDLER, INTERRUPT, NORMAL, Cpu
from repro.machine.config import SP_1998
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def cpu(sim):
    return Cpu(sim, node_id=0, config=SP_1998)


class TestSingleThread:
    def test_execute_advances_time(self, sim, cpu):
        def body(thread):
            yield from thread.execute(5.0)
            return sim.now

        t = cpu.spawn(body)
        assert sim.run_until_complete(t.process) == 5.0
        assert t.cpu_time == 5.0

    def test_negative_cost_rejected(self, sim, cpu):
        def body(thread):
            yield from thread.execute(-1.0)

        t = cpu.spawn(body)
        with pytest.raises(MachineError):
            sim.run_until_complete(t.process)

    def test_sleep_releases_cpu(self, sim, cpu):
        order = []

        def sleeper(thread):
            order.append(("sleeper-start", sim.now))
            yield from thread.sleep(10.0)
            order.append(("sleeper-end", sim.now))

        def worker(thread):
            yield from thread.execute(3.0)
            order.append(("worker-done", sim.now))

        s = cpu.spawn(sleeper, name="sleeper")
        w = cpu.spawn(worker, name="worker")
        sim.run_until_complete(sim.all_of([s.process, w.process]))
        # Worker ran during the sleeper's sleep.
        assert ("worker-done", 3.0) in order
        assert ("sleeper-end", 10.0) in order

    def test_thread_returns_value(self, sim, cpu):
        def body(thread):
            yield from thread.execute(1.0)
            return "payload"

        t = cpu.spawn(body)
        assert sim.run_until_complete(t.process) == "payload"


class TestMutualExclusion:
    def test_only_one_thread_executes(self, sim, cpu):
        spans = []

        def body(thread):
            start = sim.now
            yield from thread.execute(4.0)
            spans.append((start, sim.now))

        threads = [cpu.spawn(body, name=f"t{i}") for i in range(3)]
        sim.run_until_complete(sim.all_of([t.process for t in threads]))
        spans.sort()
        assert spans == [(0.0, 4.0), (4.0, 8.0), (8.0, 12.0)]

    def test_priority_preferred_at_release(self, sim, cpu):
        order = []

        def normal(thread):
            yield from thread.execute(2.0)
            yield from thread.yield_cpu()
            order.append(("normal", sim.now))

        def interrupt(thread):
            yield from thread.execute(1.0)
            order.append(("interrupt", sim.now))

        n = cpu.spawn(normal, name="n", priority=NORMAL)

        def spawn_later():
            yield sim.timeout(0.5)
            # Arrives while "n" holds the CPU; must run at n's first
            # scheduling point, before n's tail.
            cpu.spawn(interrupt, name="irq", priority=INTERRUPT)

        sim.process(spawn_later())
        sim.run_until_complete(n.process)
        assert order[0][0] == "interrupt"
        assert order[0][1] == 3.0  # 2.0 execute + 1.0 interrupt body

    def test_handler_between_interrupt_and_normal(self, sim, cpu):
        order = []

        def make(name):
            def body(thread):
                yield from thread.execute(1.0)
                order.append(name)
            return body

        holder_done = []

        def holder(thread):
            yield from thread.execute(1.0)
            # All three contenders are queued now; release order must be
            # by priority.
            yield from thread.yield_cpu()
            holder_done.append(sim.now)

        h = cpu.spawn(holder, name="holder", priority=NORMAL)

        def spawner():
            yield sim.timeout(0.1)
            cpu.spawn(make("normal"), name="n", priority=NORMAL)
            cpu.spawn(make("handler"), name="h", priority=HANDLER)
            cpu.spawn(make("interrupt"), name="i", priority=INTERRUPT)

        sim.process(spawner())
        sim.run(until=100.0)
        assert order == ["interrupt", "handler", "normal"]

    def test_compute_yields_between_quanta(self, sim, cpu):
        order = []

        def long_job(thread):
            yield from thread.compute(100.0, quantum=10.0)
            order.append(("job", sim.now))

        def interrupt(thread):
            yield from thread.execute(1.0)
            order.append(("irq", sim.now))

        job = cpu.spawn(long_job, name="job", priority=NORMAL)

        def spawner():
            yield sim.timeout(5.0)
            cpu.spawn(interrupt, name="irq", priority=INTERRUPT)

        sim.process(spawner())
        sim.run_until_complete(job.process)
        # The interrupt ran at the first quantum boundary, not at 100us.
        assert ("irq", 11.0) in order
        assert ("job", 101.0) in order


class TestCurrentThread:
    def test_current_thread_inside_body(self, sim, cpu):
        seen = []

        def body(thread):
            yield from thread.execute(1.0)
            seen.append(cpu.current_thread() is thread)

        t = cpu.spawn(body)
        sim.run_until_complete(t.process)
        assert seen == [True]

    def test_current_thread_outside_raises(self, sim, cpu):
        with pytest.raises(MachineError):
            cpu.current_thread()

    def test_current_thread_in_plain_process_raises(self, sim, cpu):
        def plain():
            yield sim.timeout(1.0)
            cpu.current_thread()

        proc = sim.process(plain())
        with pytest.raises(MachineError):
            sim.run_until_complete(proc)


class TestWait:
    def test_wait_returns_event_value(self, sim, cpu):
        ev = sim.event()

        def body(thread):
            val = yield from thread.wait(ev)
            return val

        def firer():
            yield sim.timeout(2.0)
            ev.succeed("sig")

        t = cpu.spawn(body)
        sim.process(firer())
        assert sim.run_until_complete(t.process) == "sig"

    def test_waiting_thread_does_not_hold_cpu(self, sim, cpu):
        ev = sim.event()

        def waiter(thread):
            yield from thread.wait(ev)

        def worker(thread):
            yield from thread.execute(1.0)
            ev.succeed(None)
            return sim.now

        w = cpu.spawn(waiter, name="waiter")
        k = cpu.spawn(worker, name="worker")
        results = sim.run_until_complete(sim.all_of(
            [w.process, k.process]))
        assert results[k.process] == 1.0
