"""Tests for delivery filters, get-cancellation, interrupt coalescing."""

import pytest

from repro.errors import SimulationError
from repro.machine import Adapter, Packet, Switch
from repro.machine.config import SP_1998
from repro.sim import Channel, RngRegistry, Simulator


class TestCancelGet:
    def test_cancelled_getter_does_not_steal(self):
        sim = Simulator()
        ch = Channel(sim)
        g1 = ch.get()
        ch.cancel_get(g1)
        g2 = ch.get()
        ch.put("item")
        assert not g1.triggered
        assert g2.value == "item"

    def test_cancel_satisfied_get_rejected(self):
        sim = Simulator()
        ch = Channel(sim)
        ch.put("x")
        g = ch.get()
        with pytest.raises(SimulationError):
            ch.cancel_get(g)

    def test_cancel_unknown_get_rejected(self):
        sim = Simulator()
        ch = Channel(sim)
        other = Channel(sim)
        g = other.get()
        with pytest.raises(SimulationError):
            ch.cancel_get(g)


class TestDeliveryFilter:
    def _fabric(self):
        sim = Simulator()
        switch = Switch(sim, 2, SP_1998, RngRegistry(seed=1))
        ads = []
        for i in range(2):
            ad = Adapter(sim, i, SP_1998)
            ad.connect(switch)
            ads.append(ad)
        return sim, switch, ads

    def _pkt(self, kind):
        return Packet(src=0, dst=1, proto="lapi", kind=kind,
                      header_bytes=16, payload=b"")

    def test_filter_consumes_matching_packets(self):
        sim, switch, (a0, a1) = self._fabric()
        client = a1.attach_client("lapi")
        eaten = []
        client.delivery_filter = \
            lambda p: (eaten.append(p) or True) if p.kind == "ack" \
            else False
        switch.route(self._pkt("ack"))
        switch.route(self._pkt("data"))
        sim.run()
        assert len(eaten) == 1
        assert client.pending == 1  # only the data packet queued
        ok, got = client.rx.try_get()
        assert got.kind == "data"

    def test_filtered_packets_raise_no_interrupt(self):
        sim, switch, (a0, a1) = self._fabric()
        client = a1.attach_client("lapi")
        client.delivery_filter = lambda p: p.kind == "ack"
        fired = []
        client.on_arrival = lambda: fired.append(sim.now)
        switch.route(self._pkt("ack"))
        sim.run()
        assert fired == []
        switch.route(self._pkt("data"))
        sim.run()
        assert len(fired) == 1


class TestInterruptCoalescing:
    def test_bulk_stream_single_interrupt(self):
        """Packets spaced well inside the linger window are serviced by
        one interrupt; the big put below generates a ~40-packet stream
        but only a couple of interrupts at the target."""
        from repro.machine import Cluster

        def main(task):
            lapi = task.lapi
            n = 40 * SP_1998.lapi_payload
            buf = task.memory.malloc(n)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(n)
                yield from lapi.put(1, n, buf, src, tgt_cntr=tgt.id)
                yield from lapi.fence()
            else:
                yield from lapi.waitcntr(tgt, 1)
            yield from lapi.gfence()
            return lapi.stats.interrupts_taken

        cluster = Cluster(nnodes=2)
        results = cluster.run_job(main, stacks=("lapi",),
                                  interrupt_mode=True)
        # Target serviced ~40 packets; interrupts must be far fewer.
        assert results[1] <= 6, results

    def test_spaced_messages_separate_interrupts(self):
        """Messages separated by much more than the linger window each
        pay their own interrupt."""
        from repro.machine import Cluster

        count = 4

        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(64)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(64)
                for _ in range(count):
                    yield from lapi.put(1, 64, buf, src,
                                        tgt_cntr=tgt.id)
                    yield from lapi.fence()
                    yield from task.thread.sleep(500.0)
            else:
                yield from lapi.waitcntr(tgt, count)
            yield from lapi.gfence()
            return lapi.stats.interrupts_taken

        cluster = Cluster(nnodes=2)
        results = cluster.run_job(main, stacks=("lapi",),
                                  interrupt_mode=True)
        assert results[1] >= count, results
