"""Tests for cluster statistics snapshots."""

import pytest

from repro.machine import Cluster, snapshot


def run_traffic(nnodes=2):
    def main(task):
        lapi = task.lapi
        buf = task.memory.malloc(4096)
        yield from lapi.gfence()
        if task.rank == 0:
            src = task.memory.malloc(4096)
            yield from lapi.put_sync(1, 4096, buf, src)
        yield from lapi.gfence()

    cluster = Cluster(nnodes=nnodes)
    cluster.run_job(main, stacks=("lapi",))
    return cluster


class TestSnapshot:
    def test_counters_consistent(self):
        cluster = run_traffic()
        stats = snapshot(cluster)
        assert stats.virtual_time_us > 0
        assert stats.packets_routed > 0
        assert stats.packets_lost == 0
        # Every routed packet was sent by some adapter.
        assert stats.total_sent == stats.packets_routed
        # Conservation: received + dropped == delivered.
        assert sum(stats.adapter_received.values()) \
            <= stats.packets_routed

    def test_bytes_and_bandwidth(self):
        cluster = run_traffic()
        stats = snapshot(cluster)
        assert stats.bytes_routed >= 4096  # at least the payload
        assert stats.effective_bandwidth_mbs > 0

    def test_busiest_links_sorted(self):
        cluster = run_traffic()
        stats = snapshot(cluster, top_links=3)
        utils = [u for _, u in stats.busiest_links]
        assert utils == sorted(utils, reverse=True)
        assert len(stats.busiest_links) <= 3
        assert all(0.0 <= u <= 1.0 for u in utils)

    def test_render_mentions_every_node(self):
        cluster = run_traffic()
        text = snapshot(cluster).render()
        assert "node 0" in text and "node 1" in text
        assert "switch:" in text

    def test_empty_cluster_snapshot(self):
        cluster = Cluster(nnodes=2)
        stats = snapshot(cluster)
        assert stats.packets_routed == 0
        assert stats.effective_bandwidth_mbs == 0.0
        assert stats.render()  # renders without traffic too
