"""Tests for the scale fabrics: fat tree, dragonfly, and the factory.

The SP multistage topology is covered by the historical network tests;
these exercise the two large-N fabrics added for ``--scale`` -- route
shapes, candidate counts, gateway selection -- plus the bounded route
cache and the streamed top-k link statistics.
"""

import pytest

from repro.errors import NetworkError
from repro.machine.config import SP_1998
from repro.machine.routing import (DragonflyTopology, FatTreeTopology,
                                   TOPOLOGIES, Topology, build_topology)
from repro.machine.switch import Switch
from repro.sim import RngRegistry, Simulator


FT_CFG = SP_1998.replace(topology="fattree")
DF_CFG = SP_1998.replace(topology="dragonfly")


def make_switch(config=SP_1998, nnodes=8):
    return Switch(Simulator(), nnodes, config, RngRegistry(seed=1))


class TestFactory:
    def test_dispatch(self):
        assert type(build_topology(8, SP_1998)) is Topology
        assert isinstance(build_topology(8, FT_CFG), FatTreeTopology)
        assert isinstance(build_topology(8, DF_CFG), DragonflyTopology)

    def test_unknown_kind_rejected(self):
        with pytest.raises(NetworkError, match="topology"):
            build_topology(8, SP_1998.replace(topology="torus"))

    def test_config_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="topology"):
            SP_1998.replace(topology="torus").validate()

    def test_registry(self):
        assert TOPOLOGIES == ("sp", "fattree", "dragonfly")


class TestFatTree:
    def test_same_leaf_single_route(self):
        ft = build_topology(64, FT_CFG)
        (route,) = ft.routes(0, 1, FT_CFG)
        assert len(route.links) == 2  # up + down, no fabric hops
        assert not route.crosses_core

    def test_same_pod_candidates(self):
        ft = build_topology(256, FT_CFG)
        # Nodes 0 and 16 sit on different leaves of pod 0.
        routes = list(ft.routes(0, 16, FT_CFG))
        assert len(routes) == ft.agg_count
        assert all(len(r.links) == 4 for r in routes)
        assert not any(r.crosses_core for r in routes)

    def test_cross_pod_candidates(self):
        ft = build_topology(512, FT_CFG)
        pod = ft.leaf_size * ft.pod_leaves
        routes = list(ft.routes(0, pod, FT_CFG))
        assert len(routes) == ft.core_count
        assert all(len(r.links) == 6 for r in routes)
        assert all(r.crosses_core for r in routes)

    def test_candidate_paths_are_disjoint_in_fabric(self):
        ft = build_topology(512, FT_CFG)
        pod = ft.leaf_size * ft.pod_leaves
        fabric = [tuple(ln.name for ln in r.links[1:-1])
                  for r in ft.routes(0, pod, FT_CFG)]
        assert len(set(fabric)) == len(fabric)

    def test_latency_grows_with_distance(self):
        ft = build_topology(512, FT_CFG)
        (leaf,) = ft.routes(0, 1, FT_CFG)
        pod_route = ft.routes(0, 16, FT_CFG)[0]
        core_route = ft.routes(
            0, ft.leaf_size * ft.pod_leaves, FT_CFG)[0]
        assert (leaf.fixed_latency < pod_route.fixed_latency
                < core_route.fixed_latency)

    def test_iter_links_covers_route_links(self):
        ft = build_topology(128, FT_CFG)
        names = {ln.name for ln in ft.iter_links()}
        for dst in (1, 16, 127):
            for route in ft.routes(0, dst, FT_CFG):
                assert {ln.name for ln in route.links} <= names


class TestDragonfly:
    def test_same_router(self):
        df = build_topology(64, DF_CFG)
        (route,) = df.routes(0, 1, DF_CFG)
        assert len(route.links) == 2
        assert not route.crosses_core

    def test_same_group_uses_local_link(self):
        df = build_topology(64, DF_CFG)
        (route,) = df.routes(0, df.router_nodes, DF_CFG)
        assert len(route.links) == 3
        assert not route.crosses_core

    def test_cross_group_minimal_path(self):
        df = build_topology(512, DF_CFG)
        group = df.router_nodes * df.group_routers
        (route,) = df.routes(0, group, DF_CFG)
        assert route.crosses_core
        names = [ln.name for ln in route.links]
        assert sum(n.startswith("G") for n in names) == 1  # one global
        # Minimal routing: at most up + local + global + local + down.
        assert 3 <= len(route.links) <= 5

    def test_cross_group_latency_includes_global(self):
        df = build_topology(512, DF_CFG)
        group = df.router_nodes * df.group_routers
        (local,) = df.routes(0, 1, DF_CFG)
        (remote,) = df.routes(0, group, DF_CFG)
        assert (remote.fixed_latency - local.fixed_latency
                >= DF_CFG.dragonfly_global_latency)

    def test_gateway_router_selection(self):
        # The gateway toward group gd is router ``gd % rpg``; a source
        # already sitting on the gateway router skips the local hop.
        df = build_topology(512, DF_CFG)
        group = df.router_nodes * df.group_routers
        gw_src = 1 * df.router_nodes  # node on router 1 == gateway to g1
        (from_gw,) = df.routes(gw_src, group, DF_CFG)
        (from_r0,) = df.routes(0, group, DF_CFG)
        assert len(from_gw.links) == len(from_r0.links) - 1

    def test_iter_links_covers_route_links(self):
        df = build_topology(256, DF_CFG)
        names = {ln.name for ln in df.iter_links()}
        for dst in (1, 5, 64, 255):
            for route in df.routes(0, dst, DF_CFG):
                assert {ln.name for ln in route.links} <= names


class TestBoundedRouteCache:
    def test_unbounded_by_default(self):
        sw = make_switch()
        assert sw._route_cache_limit is None
        for dst in range(1, 8):
            sw.route_candidates(0, dst)
        assert len(sw._route_cache) == 7

    def test_fifo_eviction_at_limit(self):
        sw = make_switch(SP_1998.replace(route_cache_entries=4))
        for dst in range(1, 6):
            sw.route_candidates(0, dst)
        assert len(sw._route_cache) == 4
        assert (0, 1) not in sw._route_cache  # oldest evicted
        assert (0, 5) in sw._route_cache

    def test_eviction_does_not_change_routes(self):
        sw = make_switch(SP_1998.replace(route_cache_entries=2))
        first = sw.route_candidates(0, 1)
        for dst in range(2, 8):
            sw.route_candidates(0, dst)
        again = sw.route_candidates(0, 1)  # recomputed after eviction
        assert [tuple(ln.name for ln in r.links) for r in first] == \
               [tuple(ln.name for ln in r.links) for r in again]


class TestTopLinks:
    HORIZON = 10.0

    def _loaded_switch(self):
        sw = make_switch()
        for dst in range(1, 8):
            for route in sw.route_candidates(0, dst):
                for link in route.links:
                    link.occupy(0.0, 0.3 * dst)  # uneven load
        return sw

    def test_busiest_links_matches_full_sort(self):
        sw = self._loaded_switch()
        full = sorted(sw.link_utilization(self.HORIZON).items(),
                      key=lambda kv: -kv[1])
        for k in (1, 4, 16, 10_000):
            assert sw.busiest_links(k, self.HORIZON) == full[:k]

    def test_metrics_default_is_full_block(self):
        sw = self._loaded_switch()
        assert sw.metrics_top_links is None
        gauges = [n for n in sw.metrics() if n.startswith("util.")]
        assert len(gauges) == len(sw.link_utilization())

    def test_metrics_top_links_bounds_block(self):
        sw = self._loaded_switch()
        sw.metrics_top_links = 3
        gauges = [n for n in sw.metrics() if n.startswith("util.")]
        assert len(gauges) == 3
