"""Object pools: reset-on-acquire, uid freshness, and span aliasing.

The regression these tests pin down: a pool-recycled :class:`Packet`
must carry *nothing* of its previous life.  In particular the ``uid``
must be redrawn from the per-cluster id stream on every acquire --
uid-keyed side tables (the span recorder's per-packet tracks) would
otherwise attribute a recycled acknowledgement to the span that owned
the uid's previous incarnation.
"""

import pytest

from repro.faults import AckLoss, FaultSchedule
from repro.machine import Cluster
from repro.machine.config import SP_1998
from repro.machine.packet import Packet, next_packet_id, \
    reset_packet_ids
from repro.machine.pool import HotPools, PacketPool, TrainPool
from repro.obs import SpanRecorder, merge_pool_stats, pool_stats

NBYTES = 131072


def _acquire(pool, **overrides):
    kwargs = dict(src=0, dst=1, proto="lapi", kind="ack",
                  header_bytes=64, payload=b"")
    kwargs.update(overrides)
    return pool.acquire(**kwargs)


class TestPacketPoolReset:
    def test_reset_clears_every_mutable_field(self):
        pool = PacketPool()
        first = _acquire(pool, payload=b"xy")
        first.seq = 41
        first.info["acked_seq"] = 41
        first.info["stale"] = object()
        old_uid = first.uid
        pool.release(first)
        again = _acquire(pool, src=3, dst=2, kind="data")
        assert again is first  # recycled, not reconstructed
        assert again.src == 3 and again.dst == 2
        assert again.kind == "data"
        assert again.seq == -1
        assert again.info == {}
        assert again.payload == b""
        assert again.size == 64
        assert again.uid != old_uid

    def test_uid_stream_identical_to_unpooled(self):
        # Each acquire corresponds 1:1 to the construction the unpooled
        # path would have performed, so the uid stream must advance
        # exactly as if a fresh Packet had been built.
        reset_packet_ids()
        pool = PacketPool()
        a = _acquire(pool)
        first_uid = a.uid
        pool.release(a)
        b = _acquire(pool)  # recycled (b is a): uid redrawn, not reused
        c = Packet(src=0, dst=1, proto="lapi", kind="ack",
                   header_bytes=64)
        assert (first_uid, b.uid, c.uid) == (first_uid, first_uid + 1,
                                             first_uid + 2)

    def test_foreign_packets_are_ignored_on_release(self):
        pool = PacketPool()
        foreign = Packet(src=0, dst=1, proto="lapi", kind="data",
                         header_bytes=64)
        pool.release(foreign)
        assert pool.releases == 0
        assert pool.outstanding == 0

    def test_cap_bounds_the_free_list(self):
        pool = PacketPool(cap=2)
        pkts = [_acquire(pool) for _ in range(4)]
        for p in pkts:
            pool.release(p)
        assert len(pool._free) == 2
        assert pool.releases == 4  # counted even when dropped


class TestSpanAliasRegression:
    def test_recycled_packet_never_aliases_stale_track(self):
        """The S2 bug: recycle an ack whose uid a span track still
        references -- the recycled packet must come out unbound."""
        sp = SpanRecorder()
        pool = PacketPool()
        ack = _acquire(pool)
        sid = sp.open(0, "lapi", "put", 0.0)
        sp.bind_packet(ack, sid, "ack")
        assert sp.origin_of(ack) == sid
        # Release WITHOUT retiring the track first -- the worst case: a
        # stale uid-keyed entry survives in the recorder.
        pool.release(ack)
        again = _acquire(pool)
        assert again is ack
        assert sp.origin_of(again) is None  # fresh uid, no alias

    def test_cluster_run_with_spans_recycles_cleanly(self):
        """Pooling interleaved with --spans on a real job: every
        acquired ack returns to the pool, every bound ack track is
        retired, and the span stream is produced intact."""
        cluster = Cluster(nnodes=2, config=SP_1998, seed=0x52,
                          spans=SpanRecorder())

        def main(task):
            lapi = task.lapi
            mem = task.memory
            buf = mem.malloc(NBYTES)
            yield from lapi.gfence()
            if task.rank == 0:
                src = mem.malloc(NBYTES)
                cmpl = lapi.counter()
                yield from lapi.put(1, NBYTES, buf, src,
                                    cmpl_cntr=cmpl)
                yield from lapi.waitcntr(cmpl, 1)
            yield from lapi.gfence()

        cluster.run_job(main, stacks=("lapi",), interrupt_mode=False)
        stats = pool_stats(cluster)
        assert stats["packets"]["acquires"] > 0
        assert stats["packets"]["hits"] > 0
        # A trailing ack (the final gfence's) can still be in flight at
        # quiesce; anything beyond that handful would be a leak.
        assert stats["packets"]["outstanding"] <= 2
        assert stats["span_tracks"]["tracks_recycled"] > 0
        assert cluster.spans.span_dicts()


class TestLeakGauge:
    def test_fabric_dropped_acks_show_as_outstanding(self):
        # Acks lost by a faulty fabric never reach their consumption
        # point, so they never return to the pool: the outstanding
        # gauge is the leak detector.
        sched = FaultSchedule([AckLoss(rate=0.4, src=1, dst=0,
                                       start=0.0, end=1e7)])
        cluster = Cluster(nnodes=2, config=SP_1998, seed=0x5E,
                          faults=sched)

        def main(task):
            lapi = task.lapi
            mem = task.memory
            buf = mem.malloc(NBYTES)
            yield from lapi.gfence()
            if task.rank == 0:
                src = mem.malloc(NBYTES)
                cmpl = lapi.counter()
                yield from lapi.put(1, NBYTES, buf, src,
                                    cmpl_cntr=cmpl)
                yield from lapi.waitcntr(cmpl, 1)
            yield from lapi.gfence()

        cluster.run_job(main, stacks=("lapi",), interrupt_mode=False)
        pool = cluster.pools.packets
        assert pool.acquires > 0
        assert pool.outstanding > 0  # the fabric ate some acks


class TestHotPoolsPlumbing:
    def test_cluster_owns_per_cluster_pools(self):
        a = Cluster(nnodes=2, config=SP_1998, seed=1)
        b = Cluster(nnodes=2, config=SP_1998, seed=1)
        assert isinstance(a.pools, HotPools)
        assert a.pools is not b.pools
        assert a.sim.pools is a.pools

    def test_train_pool_recycles_records(self):
        pool = TrainPool(cap=2)
        t = pool.acquire()
        assert t.pooled
        pool.release(t)
        again = pool.acquire()
        assert again is t
        assert pool.hits == 1
        pool.release(again)
        assert pool.outstanding == 0

    def test_merge_pool_stats_sums_and_recomputes_rates(self):
        merged = merge_pool_stats([
            {"packets": {"acquires": 10, "hits": 5, "releases": 10,
                         "hit_rate": 0.5}},
            {"packets": {"acquires": 30, "hits": 25, "releases": 30,
                         "hit_rate": 0.8333}},
            None,
        ])
        assert merged["packets"]["acquires"] == 40
        assert merged["packets"]["hits"] == 30
        assert merged["packets"]["hit_rate"] == 0.75
