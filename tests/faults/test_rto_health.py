"""Adaptive RTO, Karn's rule, backoff, and peer-health transitions.

Unit tests drive a :class:`ReliableTransport` against a stub adapter
(no fabric), so timer rounds and acknowledgement arrivals can be
sequenced exactly; integration tests check the structured failure path
through ``Cluster.run_job`` and the registered LAPI error handler.
"""

import pickle

import pytest

from repro.core.reliability import (DEGRADED, HEALTHY, UNREACHABLE,
                                    ReliableTransport)
from repro.errors import NetworkError, PeerUnreachableError
from repro.machine import Cluster
from repro.machine.config import SP_1998
from repro.machine.packet import Packet
from repro.sim import Simulator


class _StubAdapter:
    node_id = 0
    crashed = False

    def __init__(self):
        self.injected = []

    def inject_async(self, pkt):
        self.injected.append(pkt)
        return True

    def inject_control(self, pkt):
        self.injected.append(pkt)


def make_transport(**overrides):
    kw = dict(window=8, timeout=1000.0, adaptive=True, rto_min=50.0,
              rto_max=4000.0, backoff=2.0, degraded_after=2)
    kw.update(overrides)
    sim = Simulator()
    tr = ReliableTransport(sim, _StubAdapter(), "t", **kw)
    return sim, tr


def data_packet():
    return Packet(src=0, dst=1, proto="t", kind="data", header_bytes=8)


def ack_for(seq):
    return Packet(src=1, dst=0, proto="t", kind="ack", header_bytes=16,
                  info={"acked_seq": seq})


def run_until(sim, t):
    while sim.peek() <= t:
        sim.step()


class TestEstimator:
    def test_first_sample_seeds_srtt(self):
        _, tr = make_transport()
        st = tr._peer_tx(1)
        tr._observe_rtt(st, 100.0)
        assert st.srtt == 100.0
        assert st.rttvar == 50.0
        assert st.rto == 300.0  # srtt + 4 * rttvar

    def test_steady_samples_shrink_variance(self):
        _, tr = make_transport()
        st = tr._peer_tx(1)
        for _ in range(50):
            tr._observe_rtt(st, 100.0)
        assert st.srtt == pytest.approx(100.0)
        # Constant RTT: variance decays, RTO converges toward SRTT
        # (clamped at rto_min if it would go below).
        assert st.rto < 150.0

    def test_rto_clamped_to_bounds(self):
        _, tr = make_transport()
        st = tr._peer_tx(1)
        for _ in range(80):
            tr._observe_rtt(st, 1.0)
        assert st.rto == 50.0   # rto_min
        tr._observe_rtt(st, 50000.0)
        assert st.rto == 4000.0  # rto_max

    def test_deadline_fixed_vs_adaptive(self):
        _, fixed = make_transport(adaptive=False)
        st = fixed._peer_tx(1)
        assert fixed._deadline(st, 10.0) == 10.0 + 1000.0
        _, ad = make_transport()
        st = ad._peer_tx(1)
        st.rto = 100.0
        st.backoff_mult = 8.0
        assert ad._deadline(st, 10.0) == 10.0 + 800.0
        st.backoff_mult = 64.0  # capped by rto_max
        assert ad._deadline(st, 10.0) == 10.0 + 4000.0


class TestBackoffAndHealth:
    def test_timer_rounds_backoff_and_degrade(self):
        sim, tr = make_transport()
        st = tr._peer_tx(1)
        tr._register(st, data_packet(), uses_window=False, on_ack=None)
        # First round at t=1000 (initial rto == timeout).
        run_until(sim, 1000.0)
        assert tr.retransmissions == 1
        assert st.backoff_mult == 2.0
        assert st.health == HEALTHY
        # Second round: deadline 1000 + 2000, degraded_after=2 trips.
        run_until(sim, 3000.0)
        assert tr.retransmissions == 2
        assert st.backoff_mult == 4.0
        assert st.health == DEGRADED
        assert tr.peer_degraded_events == 1
        assert tr.peer_health(1) == DEGRADED

    def test_karn_skips_sample_and_ack_recovers_health(self):
        sim, tr = make_transport()
        st = tr._peer_tx(1)
        tr._register(st, data_packet(), uses_window=False, on_ack=None)
        run_until(sim, 3000.0)  # two retransmitting rounds -> DEGRADED
        tr.on_ack(ack_for(0))
        # The packet was retransmitted: the ack is ambiguous, so no RTT
        # sample -- but it still proves the peer is alive.
        assert tr.karn_skips == 1
        assert st.srtt is None
        assert st.backoff_mult == 1.0
        assert st.health == HEALTHY
        assert tr.peer_recovered_events == 1
        assert not st.unacked

    def test_fresh_ack_feeds_estimator(self):
        sim, tr = make_transport()
        st = tr._peer_tx(1)
        tr._register(st, data_packet(), uses_window=False, on_ack=None)
        sim.call_at(30.0, lambda _: None, None)
        sim.step()  # advance to t=30 without a timer round
        tr.on_ack(ack_for(0))
        assert tr.karn_skips == 0
        assert st.srtt == 30.0
        assert st.rto == 90.0  # 30 + 4*15, above rto_min=50


class TestPeerFatal:
    def test_exhaustion_routes_through_on_fatal(self):
        sim, tr = make_transport()
        tr.MAX_RETRANSMITS_PER_PACKET = 2
        seen = []
        tr.on_fatal = seen.append
        st = tr._peer_tx(1)
        tr._register(st, data_packet(), uses_window=True, on_ack=None)
        run_until(sim, 60_000.0)
        assert len(seen) == 1
        err = seen[0]
        assert isinstance(err, PeerUnreachableError)
        assert (err.proto, err.node, err.peer) == ("t", 0, 1)
        assert err.attempts == 2
        assert "terminated" in str(err)
        assert st.health == UNREACHABLE
        assert tr.peer_health(1) == UNREACHABLE
        assert tr.peers_unreachable == 1
        assert not st.unacked and not st.attempts
        assert not st.timer_running

    def test_exhaustion_without_hook_raises_from_timer(self):
        sim, tr = make_transport()
        tr.MAX_RETRANSMITS_PER_PACKET = 1
        st = tr._peer_tx(1)
        tr._register(st, data_packet(), uses_window=False, on_ack=None)
        with pytest.raises(PeerUnreachableError):
            run_until(sim, 60_000.0)

    def test_error_pickles_with_context(self):
        sim, tr = make_transport()
        tr.MAX_RETRANSMITS_PER_PACKET = 1
        seen = []
        tr.on_fatal = seen.append
        st = tr._peer_tx(1)
        tr._register(st, data_packet(), uses_window=False, on_ack=None)
        run_until(sim, 60_000.0)
        clone = pickle.loads(pickle.dumps(seen[0]))
        assert str(clone) == str(seen[0])
        assert (clone.proto, clone.node, clone.peer,
                clone.attempts) == ("t", 0, 1, 1)


class TestErrorHandlerRouting:
    """LAPI error-handler semantics on the structured failure path."""

    @staticmethod
    def _job(main, error_handler=None):
        return Cluster(nnodes=2, seed=3).run_job(
            main, stacks=("lapi",), error_handler=error_handler,
            until=1_000_000.0)

    def test_handler_true_suppresses(self):
        seen = []

        def handler(err):
            seen.append(err)
            return True

        def main(task):
            yield from task.lapi.gfence()
            if task.rank == 0:
                task.lapi._transport_fatal(
                    PeerUnreachableError("injected"))
            yield from task.lapi.gfence()
            return "ok"

        assert self._job(main, handler) == ["ok", "ok"]
        assert len(seen) == 1 and str(seen[0]) == "injected"

    def test_handler_false_fails_run(self):
        def main(task):
            yield from task.lapi.gfence()
            if task.rank == 0:
                task.lapi._transport_fatal(
                    PeerUnreachableError("injected"))
            yield from task.lapi.gfence()

        with pytest.raises(PeerUnreachableError, match="injected"):
            self._job(main, error_handler=lambda err: False)

    def test_no_handler_fails_run(self):
        def main(task):
            yield from task.lapi.gfence()
            if task.rank == 0:
                task.lapi._transport_fatal(
                    PeerUnreachableError("injected"))
            yield from task.lapi.gfence()

        with pytest.raises(PeerUnreachableError, match="injected"):
            self._job(main)

    def test_dead_peer_carries_context(self):
        """End to end: the unreachable-peer error raised from run_job
        carries the structured proto/node/peer/attempts context."""
        def main(task):
            lapi = task.lapi
            mem = task.memory
            window = mem.malloc(8)
            if task.rank == 0:
                yield from lapi.put(1, 8, window, window)
                yield from lapi.gfence()
            else:
                lapi.set_interrupt_mode(False)
                yield from task.thread.sleep(1e9)

        cfg = SP_1998.replace(lapi_retrans_timeout=200.0)
        with pytest.raises(NetworkError,
                           match="mismatched|terminated") as exc:
            Cluster(nnodes=2, config=cfg).run_job(main,
                                                  stacks=("lapi",))
        err = exc.value
        assert isinstance(err, PeerUnreachableError)
        assert err.proto == "lapi"
        assert err.node == 0
        assert err.peer == 1
        assert err.attempts == ReliableTransport.MAX_RETRANSMITS_PER_PACKET
