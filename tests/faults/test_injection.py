"""Runtime fault injection: drops, corruption, CPU windows, determinism."""

import pytest

from repro.faults import (AckLoss, Corruption, CpuPause, FaultSchedule,
                          GilbertElliott, LinkOutage)
from repro.faults.runtime import _CpuFaults
from repro.machine import Cluster
from repro.machine.packet import Packet

from .conftest import run_put_workload


class TestFabricInjection:
    def test_ge_loss_drops_and_recovers(self):
        cluster, rec = run_put_workload(
            FaultSchedule([GilbertElliott(loss_good=0.15)]))
        assert cluster.faults.ge_drops > 0
        assert rec["retransmissions"] > 0
        assert rec["intact"]

    def test_bursty_loss_drops_and_recovers(self):
        cluster, rec = run_put_workload(
            FaultSchedule([GilbertElliott(p_good_bad=0.05,
                                          p_bad_good=0.25,
                                          loss_bad=0.8)]),
            msgs=10)
        assert cluster.faults.ge_drops > 0
        assert rec["intact"]

    def test_outage_drops_and_recovers(self):
        cluster, rec = run_put_workload(
            FaultSchedule([LinkOutage(src=0, dst=1, start=200.0,
                                      end=900.0)]))
        assert cluster.faults.outage_drops > 0
        assert rec["retransmissions"] > 0
        assert rec["intact"]

    def test_outage_judge_respects_window(self):
        """The outage verdict is a pure function of the window (no RNG)."""
        sched = FaultSchedule([LinkOutage(src=0, dst=1, start=200.0,
                                          end=900.0)])
        rt = Cluster(nnodes=2, faults=sched).faults
        pkt = Packet(src=0, dst=1, proto="x", kind="data",
                     header_bytes=8)
        assert rt.judge(pkt, 100.0) is None
        assert rt.judge(pkt, 200.0) == "outage"
        assert rt.judge(pkt, 899.0) == "outage"
        assert rt.judge(pkt, 900.0) is None
        # The reverse direction is unaffected.
        rev = Packet(src=1, dst=0, proto="x", kind="data",
                     header_bytes=8)
        assert rt.judge(rev, 500.0) is None

    def test_ack_loss_exercises_karn(self):
        cluster, rec = run_put_workload(
            FaultSchedule([AckLoss(src=1, dst=0, rate=0.5)]), msgs=10)
        assert cluster.faults.ack_drops > 0
        assert rec["retransmissions"] > 0
        assert rec["karn_skips"] > 0
        assert rec["intact"]

    def test_ack_loss_ignores_data_packets(self):
        sched = FaultSchedule([AckLoss(src=1, dst=0, rate=0.999)])
        rt = Cluster(nnodes=2, faults=sched).faults
        data = Packet(src=1, dst=0, proto="x", kind="data",
                      header_bytes=8)
        assert all(rt.judge(data, 0.0) is None for _ in range(50))

    def test_corruption_dies_at_rx_crc(self):
        cluster, rec = run_put_workload(
            FaultSchedule([Corruption(rate=0.2)]), msgs=8)
        assert cluster.faults.crc_drops > 0
        # Corrupt packets traverse the wire and are discarded by the
        # *receiving* adapter, not the fabric.
        rx_dropped = sum(n.adapter.rx_crc_dropped
                         for n in cluster.nodes)
        assert rx_dropped == cluster.faults.crc_drops
        assert rec["retransmissions"] > 0
        assert rec["intact"]


class TestCpuWindows:
    def test_pause_stretches_virtual_time(self):
        base, rec0 = run_put_workload(None)
        paused, rec1 = run_put_workload(
            FaultSchedule([CpuPause(node=1, start=100.0,
                                    end=1500.0)]))
        assert rec0["intact"] and rec1["intact"]
        assert paused.sim.now > base.sim.now
        assert paused.faults.metrics()["cpu_stall_us"] > 0.0

    def test_elapsed_full_pause_window(self):
        cf = _CpuFaults([(100.0, 200.0, 0.0)])
        assert cf.elapsed(0.0, 50.0) == 50.0          # before window
        assert cf.elapsed(300.0, 50.0) == 50.0        # after window
        # 100us of work, then paused to 200, then the remaining 50.
        assert cf.elapsed(0.0, 150.0) == 250.0
        # Starting inside the pause skips to its end first.
        assert cf.elapsed(150.0, 30.0) == 80.0
        assert cf.stall_us == pytest.approx(150.0)

    def test_elapsed_slowdown_window(self):
        cf = _CpuFaults([(100.0, 200.0, 0.5)])
        # Entirely inside at half speed: work takes twice as long.
        assert cf.elapsed(100.0, 40.0) == pytest.approx(80.0)
        # 50us achievable inside, the remaining 10 at full speed after.
        assert cf.elapsed(100.0, 60.0) == pytest.approx(110.0)

    def test_elapsed_walks_multiple_windows(self):
        cf = _CpuFaults([(10.0, 20.0, 0.0), (30.0, 40.0, 0.5)])
        # 10 full-speed, pause to 20, 10 full-speed, 5 at half speed.
        assert cf.elapsed(0.0, 25.0) == pytest.approx(40.0)


class TestDeterminism:
    SCHED = [GilbertElliott(p_good_bad=0.05, p_bad_good=0.3,
                            loss_good=0.02, loss_bad=0.6),
             Corruption(rate=0.05, start=500.0, end=2000.0)]

    def test_same_seed_byte_identical(self):
        a, _ = run_put_workload(FaultSchedule(self.SCHED), seed=42)
        b, _ = run_put_workload(FaultSchedule(self.SCHED), seed=42)
        assert a.sim.now == b.sim.now
        assert a.sim.events_processed == b.sim.events_processed
        assert a.metrics.render() == b.metrics.render()

    def test_different_seed_diverges(self):
        a, _ = run_put_workload(FaultSchedule(self.SCHED), seed=42)
        b, _ = run_put_workload(FaultSchedule(self.SCHED), seed=43)
        assert a.metrics.render() != b.metrics.render()

    def test_empty_schedule_identical_to_none(self):
        a, _ = run_put_workload(None, seed=7)
        b, _ = run_put_workload(FaultSchedule([]), seed=7)
        assert b.faults is None
        assert a.sim.now == b.sim.now
        assert a.sim.events_processed == b.sim.events_processed
        assert a.metrics.render() == b.metrics.render()
