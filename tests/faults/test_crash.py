"""Fail-stop node crashes: clauses, machine semantics, detection.

Clause-level tests validate the NodeCrash/NodeRestart schedule
algebra; machine tests check the kill/restart semantics (threads die
at their yield points, the adapter goes dark, restart revives the
machine but not the task); detector tests drive the heartbeat failure
detector end to end through ``Cluster.run_job``.
"""

import math
import pickle

import pytest

from repro.errors import MachineError, PeerUnreachableError
from repro.faults import FaultSchedule, NodeCrash, NodeRestart
from repro.machine import TASK_CRASHED, Cluster
from repro.machine.config import SP_1998


def _idle(task):
    """Workload that parks every rank until well past any crash."""
    yield from task.lapi.gfence()
    yield from task.thread.sleep(5000.0)
    return task.rank


class TestClauses:
    def test_crash_requires_positive_start(self):
        with pytest.raises(MachineError, match="start must be > 0"):
            FaultSchedule([NodeCrash(node=0, start=0.0)])

    def test_crash_rejects_negative_node(self):
        with pytest.raises(MachineError, match="node must be >= 0"):
            FaultSchedule([NodeCrash(node=-1, start=10.0)])

    def test_restart_needs_a_preceding_crash(self):
        with pytest.raises(MachineError, match="no preceding"):
            FaultSchedule([NodeRestart(node=0, start=50.0)])

    def test_restart_must_follow_its_crash(self):
        with pytest.raises(MachineError, match="no preceding"):
            FaultSchedule([NodeCrash(node=0, start=100.0),
                           NodeRestart(node=0, start=50.0)])

    def test_restart_rejects_ambiguous_open_crashes(self):
        with pytest.raises(MachineError, match="ambiguous"):
            FaultSchedule([NodeCrash(node=0, start=10.0),
                           NodeCrash(node=0, start=20.0),
                           NodeRestart(node=0, start=30.0)])

    def test_restart_inside_finite_window_rejected(self):
        with pytest.raises(MachineError, match="falls inside"):
            FaultSchedule([NodeCrash(node=0, start=10.0, end=100.0),
                           NodeRestart(node=0, start=50.0)])

    def test_overlapping_crash_windows_rejected(self):
        with pytest.raises(MachineError, match="overlapping crash"):
            FaultSchedule([NodeCrash(node=0, start=10.0, end=100.0),
                           NodeCrash(node=0, start=50.0)])

    def test_restart_closes_open_window(self):
        sched = FaultSchedule([NodeCrash(node=1, start=10.0),
                               NodeRestart(node=1, start=90.0)])
        assert sched.crash_windows == {1: [(10.0, 90.0)]}

    def test_sequential_crashes_one_node(self):
        sched = FaultSchedule([
            NodeCrash(node=1, start=10.0, end=50.0),
            NodeCrash(node=1, start=100.0),
            NodeRestart(node=1, start=200.0)])
        assert sched.crash_windows == {1: [(10.0, 50.0), (100.0, 200.0)]}

    def test_open_crash_window_is_infinite(self):
        sched = FaultSchedule([NodeCrash(node=0, start=10.0)])
        [(start, end)] = sched.crash_windows[0]
        assert start == 10.0 and math.isinf(end)

    def test_crash_node_must_be_in_cluster(self):
        sched = FaultSchedule([NodeCrash(node=9, start=10.0)])
        with pytest.raises(MachineError, match="outside cluster"):
            Cluster(nnodes=2, faults=sched)


class TestTaskCrashedSentinel:
    def test_falsy_singleton(self):
        assert not TASK_CRASHED
        assert repr(TASK_CRASHED) == "TASK_CRASHED"

    def test_pickle_preserves_identity(self):
        """``is TASK_CRASHED`` must work on results shipped back from
        ``--jobs N`` pool workers."""
        clone = pickle.loads(pickle.dumps(TASK_CRASHED))
        assert clone is TASK_CRASHED


class TestCrashSemantics:
    def test_threads_die_and_result_is_sentinel(self):
        sched = FaultSchedule([NodeCrash(node=1, start=500.0)])
        cluster = Cluster(nnodes=2, faults=sched)
        results = cluster.run_job(_idle, stacks=("lapi",),
                                  until=500_000.0,
                                  on_peer_failure="continue")
        assert results[0] == 0
        assert results[1] is TASK_CRASHED
        assert cluster.faults.node_crashes == 1
        assert cluster.faults.threads_killed >= 1
        assert cluster.faults.crash_events[0][1:] == (1, "crash")

    def test_crashed_node_goes_dark(self):
        sched = FaultSchedule([NodeCrash(node=1, start=500.0)])
        cluster = Cluster(nnodes=2, faults=sched)
        cluster.run_job(_idle, stacks=("lapi",), until=500_000.0,
                        on_peer_failure="continue")
        node = cluster.nodes[1]
        assert node.crashed and node.cpu.crashed
        # Heartbeats kept arriving at the dead adapter: dropped.
        assert node.adapter.rx_crash_dropped > 0
        with pytest.raises(MachineError, match="crashed"):
            node.cpu.spawn(lambda thread: iter(()), name="zombie")

    def test_restart_revives_machine_not_task(self):
        # Restart after the conviction point: a machine that reboots
        # faster than the conviction threshold is never suspected, and
        # its survivors would then (correctly) wait forever for a task
        # that died with the crash.
        sched = FaultSchedule([NodeCrash(node=1, start=500.0),
                               NodeRestart(node=1, start=4000.0)])
        cluster = Cluster(nnodes=2, faults=sched)
        results = cluster.run_job(_idle, stacks=("lapi",),
                                  until=500_000.0,
                                  on_peer_failure="continue")
        node = cluster.nodes[1]
        assert not node.adapter.crashed  # machine is back
        assert node.cpu.crashed          # the task is not
        assert results[1] is TASK_CRASHED
        assert cluster.faults.node_restarts == 1

    def test_zero_cost_without_crashes(self):
        """No schedule: no detector, no heartbeat traffic, identical
        event streams (the byte-identity contract)."""
        runs = []
        for _ in range(2):
            cluster = Cluster(nnodes=2)
            cluster.run_job(_idle, stacks=("lapi",))
            assert cluster.resilience is None
            runs.append((cluster.sim.now, cluster.sim.events_processed,
                         cluster.metrics.render()))
        assert runs[0] == runs[1]


class TestDetector:
    def test_conviction_within_one_detection_period(self):
        crash_at = 700.0
        sched = FaultSchedule([NodeCrash(node=1, start=crash_at)])
        cluster = Cluster(nnodes=3, faults=sched)
        cluster.run_job(_idle, stacks=("lapi",), until=500_000.0,
                        on_peer_failure="continue")
        res = cluster.resilience
        assert res is not None
        convicted = {(obs, peer) for _, obs, peer in res.convictions}
        assert convicted == {(0, 1), (2, 1)}
        bound = (SP_1998.conviction_threshold
                 + SP_1998.heartbeat_period)
        for t, _, _ in res.convictions:
            assert crash_at < t <= crash_at + bound

    def test_survivors_see_structured_error_under_fail_policy(self):
        sched = FaultSchedule([NodeCrash(node=1, start=700.0)])
        cluster = Cluster(nnodes=2, faults=sched)
        with pytest.raises(PeerUnreachableError) as exc:
            cluster.run_job(_idle, stacks=("lapi",), until=500_000.0)
        err = exc.value
        assert err.via == "heartbeat"
        assert err.peer == 1
        assert err.proto == "lapi"
        assert err.convicted_us > err.last_heard_us >= 0.0

    def test_restart_absolves_but_peer_stays_dead(self):
        sched = FaultSchedule([NodeCrash(node=1, start=500.0),
                               NodeRestart(node=1, start=4000.0)])
        cluster = Cluster(nnodes=2, faults=sched)

        def main(task):
            yield from task.lapi.gfence()
            yield from task.thread.sleep(6000.0)
            return sorted(task.lapi.ctx.dead_peers)

        results = cluster.run_job(main, stacks=("lapi",),
                                  until=500_000.0,
                                  on_peer_failure="continue")
        res = cluster.resilience
        assert [(obs, peer) for _, obs, peer in res.convictions] \
            == [(0, 1)]
        assert [(obs, peer) for _, obs, peer in res.recoveries] \
            == [(0, 1)]
        assert all(t > 4000.0 for t, _, _ in res.recoveries)
        # Reachability is not resurrection: the convicted peer stays
        # in the survivor's dead set even after absolution.
        assert results[0] == [1]
        # ... but the transport's circuit breaker closed again.
        rel = cluster.metrics.snapshot()["core.reliability"]
        assert rel["0"]["breaker_closes"] == 1

    def test_suspicion_rises_while_silent(self):
        sched = FaultSchedule([NodeCrash(node=1, start=1000.0)])
        cluster = Cluster(nnodes=2, faults=sched)
        cluster.run_job(_idle, stacks=("lapi",), until=500_000.0,
                        on_peer_failure="continue")
        res = cluster.resilience
        # The run parks until 5000us with the peer dead since 1000us:
        # suspicion of the dead peer dwarfs the healthy-side view.
        assert res.suspicion(0, 1) > 3.0
        assert res.is_convicted(0, 1)

    def test_detector_metrics_registered(self):
        sched = FaultSchedule([NodeCrash(node=1, start=700.0)])
        cluster = Cluster(nnodes=2, faults=sched)
        cluster.run_job(_idle, stacks=("lapi",), until=500_000.0,
                        on_peer_failure="continue")
        block = cluster.metrics.snapshot()["resilience"]["-"]
        assert block["pings_sent"] > 0
        assert block["pongs_received"] > 0
        assert block["convictions"] == 1
        assert block["peers_convicted_now"] == 1

    def test_forced_detector_without_schedule(self):
        cfg = SP_1998.replace(failure_detector=True)
        cluster = Cluster(nnodes=2, config=cfg)
        assert cluster.resilience is not None
        cluster.run_job(_idle, stacks=("lapi",), until=500_000.0)
        assert cluster.resilience.convictions == []
        assert cluster.resilience.pongs_received > 0

    def test_crash_runs_deterministic(self):
        runs = []
        for _ in range(2):
            sched = FaultSchedule([NodeCrash(node=1, start=700.0)])
            cluster = Cluster(nnodes=3, faults=sched)
            cluster.run_job(_idle, stacks=("lapi",), until=500_000.0,
                            on_peer_failure="continue")
            runs.append((cluster.sim.now,
                         cluster.sim.events_processed,
                         cluster.resilience.convictions,
                         cluster.metrics.render()))
        assert runs[0] == runs[1]


class TestConfigValidation:
    def test_heartbeat_period_must_undercut_threshold(self):
        with pytest.raises(ValueError, match="heartbeat_period"):
            SP_1998.replace(heartbeat_period=2000.0,
                            conviction_threshold=2000.0).validate()

    def test_threshold_must_exceed_rto_floor(self):
        with pytest.raises(ValueError, match="RTO floor"):
            SP_1998.replace(heartbeat_period=50.0,
                            conviction_threshold=150.0).validate()

    def test_retry_budget_positive(self):
        with pytest.raises(ValueError, match="retry_budget"):
            SP_1998.replace(retry_budget=0).validate()

    def test_heartbeat_period_positive_finite(self):
        with pytest.raises(ValueError, match="heartbeat_period"):
            SP_1998.replace(heartbeat_period=0.0).validate()
        with pytest.raises(ValueError, match="heartbeat_period"):
            SP_1998.replace(heartbeat_period=math.inf).validate()

    def test_unknown_survivor_policy_rejected(self):
        with pytest.raises(MachineError, match="on_peer_failure"):
            Cluster(nnodes=2).run_job(_idle, stacks=("lapi",),
                                      on_peer_failure="panic")
