"""Crash recovery for survivors: breaker, handlers, blocked fences.

Unit tests drive the circuit breaker on a bare transport; integration
tests crash a node mid-``gfence`` and check the survivors resolve with
structured errors (or continue degraded) within one detection period
of the failure detector.
"""

import pickle

import pytest

from repro.bench.chaos import (CHAOS_BYTES, CHAOS_MSGS_QUICK, CRASH_AT_US,
                               crash_point, crash_scenarios)
from repro.core.reliability import ReliableTransport
from repro.errors import PeerUnreachableError
from repro.faults import FaultSchedule, NodeCrash
from repro.machine import TASK_CRASHED, Cluster
from repro.machine.config import SP_1998
from repro.machine.packet import Packet
from repro.sim import Simulator


class _StubAdapter:
    node_id = 0
    crashed = False

    def __init__(self):
        self.injected = []

    def inject(self, thread, packet):
        self.injected.append(packet)
        return
        yield  # pragma: no cover - make this a generator

    def inject_async(self, packet):
        self.injected.append(packet)
        return True

    def inject_control(self, packet):
        self.injected.append(packet)


def _transport(**kw):
    sim = Simulator()
    kw.setdefault("window", 2)
    kw.setdefault("timeout", 1000.0)
    return sim, ReliableTransport(sim, _StubAdapter(), "t", **kw)


def _data(dst=1):
    return Packet(src=0, dst=dst, proto="t", kind="data",
                  header_bytes=8, payload=b"x" * 32)


class TestCircuitBreaker:
    def test_peer_down_completes_in_flight_in_error(self):
        sim, tr = _transport()
        fired = []
        sim.process(tr.send_data(None, _data(), on_ack=lambda: fired.append(1)))
        sim.process(tr.send_data(None, _data(), on_ack=lambda: fired.append(2)))
        sim.run(until=10.0)
        assert tr.outstanding_total() == 2
        tr.peer_down(1)
        # Counters fired (completion in error) and state drained.
        assert fired == [1, 2]
        assert tr.completed_in_error == 2
        assert tr.outstanding_total() == 0
        assert tr.breaker_is_open(1)
        assert tr.breaker_opens == 1
        # Window credits were posted: the window is full again.
        assert tr._peer_tx(1).window.value == 2
        # Idempotent.
        tr.peer_down(1)
        assert tr.breaker_opens == 1

    def test_send_data_raises_fast_while_open(self):
        sim, tr = _transport()
        tr.peer_down(1)
        gen = tr.send_data(None, _data())
        with pytest.raises(PeerUnreachableError, match="breaker open"):
            next(gen)
        # Other peers are unaffected.
        sim.process(tr.send_data(None, _data(dst=2)))
        sim.run(until=1.0)
        assert tr.outstanding_total() == 1

    def test_send_control_suppressed_and_counted(self):
        sim, tr = _transport()
        tr.peer_down(1)
        before = len(tr.adapter.injected)
        tr.send_control(Packet(src=0, dst=1, proto="t", kind="fence",
                               header_bytes=8))
        assert len(tr.adapter.injected) == before  # nothing on the wire
        assert tr.breaker_suppressed == 1
        assert tr.metrics()["breaker_suppressed"] == 1

    def test_breaker_close_restores_traffic(self):
        sim, tr = _transport()
        tr.peer_down(1)
        st = tr._peer_tx(1)
        st.backoff_mult = 8.0
        tr.breaker_close(1)
        assert not tr.breaker_is_open(1)
        assert tr.breaker_closes == 1
        assert st.backoff_mult == 1.0  # Karn backoff reset
        assert tr.peer_health(1) == "healthy"
        sim.process(tr.send_data(None, _data()))
        sim.run(until=1.0)
        assert tr.outstanding_total() == 1
        # Closing an already-closed breaker is a no-op.
        tr.breaker_close(1)
        assert tr.breaker_closes == 1

    def test_retry_budget_property_precedence(self):
        # No config: falls back to the class cap, and the historical
        # instance-attribute override idiom keeps working.
        _, tr = _transport()
        assert tr.retry_budget == ReliableTransport.MAX_RETRANSMITS_PER_PACKET
        tr.MAX_RETRANSMITS_PER_PACKET = 2
        assert tr.retry_budget == 2
        # An explicit budget (what the stacks pass from MachineConfig)
        # wins over the class cap.
        _, tr2 = _transport(retry_budget=7)
        tr2.MAX_RETRANSMITS_PER_PACKET = 2
        assert tr2.retry_budget == 7


CRASH_RANK = 3
CRASH_AT = 900.0
#: Worst-case detection latency of the heartbeat detector, plus slack
#: for the dissemination rounds that follow the conviction.
DETECT_BOUND = (SP_1998.conviction_threshold + SP_1998.heartbeat_period
                + 500.0)


def _fence_workload(task):
    """Everyone aligns, then the survivors gfence across the crash."""
    yield from task.lapi.gfence()
    # The crash rank parks so it dies mid-sleep; survivors enter the
    # second gfence after the crash instant and block on its token.
    yield from task.thread.sleep(5000.0 if task.rank == CRASH_RANK
                                 else 1200.0)
    entered = task.now()
    yield from task.lapi.gfence()
    return (entered, task.now())


class TestCrashMidGfence:
    def _schedule(self):
        return FaultSchedule([NodeCrash(node=CRASH_RANK, start=CRASH_AT)])

    def test_survivors_unblock_within_detection_period(self):
        cluster = Cluster(nnodes=16, faults=self._schedule())
        results = cluster.run_job(_fence_workload, stacks=("lapi",),
                                  until=1_000_000.0,
                                  on_peer_failure="continue")
        assert results[CRASH_RANK] is TASK_CRASHED
        survivors = [r for i, r in enumerate(results) if i != CRASH_RANK]
        assert len(survivors) == 15
        for entered, done in survivors:
            assert entered > CRASH_AT  # really blocked across the crash
            assert done - CRASH_AT <= DETECT_BOUND
        # Every survivor convicted the dead rank exactly once.
        convicted = sorted(obs for _, obs, peer
                           in cluster.resilience.convictions
                           if peer == CRASH_RANK)
        assert convicted == [n for n in range(16) if n != CRASH_RANK]

    def test_fail_policy_raises_for_survivors(self):
        cluster = Cluster(nnodes=16, faults=self._schedule())
        with pytest.raises(PeerUnreachableError) as exc:
            cluster.run_job(_fence_workload, stacks=("lapi",),
                            until=1_000_000.0)
        assert exc.value.peer == CRASH_RANK
        assert exc.value.via == "heartbeat"
        assert exc.value.convicted_us - CRASH_AT <= DETECT_BOUND


class TestErrorHandlerSatellites:
    def _run(self, handler, nnodes=3):
        sched = FaultSchedule([NodeCrash(node=1, start=700.0)])
        cluster = Cluster(nnodes=nnodes, faults=sched)

        def main(task):
            yield from task.lapi.gfence()
            yield from task.thread.sleep(4000.0)
            return task.rank

        results = cluster.run_job(main, stacks=("lapi",),
                                  until=500_000.0,
                                  error_handler=handler)
        return cluster, results

    def test_non_callable_handler_rejected_at_init(self):
        from repro.errors import LapiError
        with pytest.raises(LapiError, match="must be callable"):
            self._run(handler=42)

    def test_raising_handler_fails_run_with_cause(self):
        def handler(err):
            raise RuntimeError("handler exploded")

        with pytest.raises(RuntimeError, match="handler exploded") as exc:
            self._run(handler)
        cause = exc.value.__cause__
        assert isinstance(cause, PeerUnreachableError)
        assert cause.via == "heartbeat"
        assert cause.peer == 1

    def test_truthy_handler_suppresses_and_survivors_continue(self):
        seen = []

        def handler(err):
            seen.append(err)
            return True  # handled: keep running degraded

        cluster, results = self._run(handler)
        assert results[0] == 0 and results[2] == 2
        assert results[1] is TASK_CRASHED
        # Both survivors' stacks consulted the handler.
        assert sorted(e.node for e in seen) == [0, 2]
        assert all(e.peer == 1 and e.via == "heartbeat" for e in seen)

    def test_error_pickles_with_detector_context(self):
        """``--jobs N`` ships these across the pool boundary."""
        seen = []
        self._run(lambda err: seen.append(err) or True)
        err = seen[0]
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, PeerUnreachableError)
        assert str(clone) == str(err)
        assert clone.proto == "lapi"
        assert clone.node == err.node
        assert clone.peer == 1
        assert clone.via == "heartbeat"
        assert clone.last_heard_us == err.last_heard_us
        assert clone.convicted_us == err.convicted_us


class TestChaosCrashPoints:
    def test_crash_point_is_deterministic(self):
        scenarios = dict(crash_scenarios(quick=True))
        sched = scenarios["node_crash"]
        a = crash_point(CHAOS_BYTES, CHAOS_MSGS_QUICK, sched)
        b = crash_point(CHAOS_BYTES, CHAOS_MSGS_QUICK, sched)
        assert a == b
        assert a["convictions"]
        assert a["detection_latency_us"] is not None
        assert a["detection_latency_us"] <= (SP_1998.conviction_threshold
                                             + SP_1998.heartbeat_period)

    def test_crash_baseline_has_no_crash_machinery(self):
        scenarios = dict(crash_scenarios(quick=True))
        rec = crash_point(CHAOS_BYTES, CHAOS_MSGS_QUICK, scenarios["crash_baseline"])
        assert rec["crash_events"] == []
        assert rec["convictions"] == []
        assert rec["crash_dropped"] == 0
        assert rec["threads_killed"] == 0

    def test_restart_scenario_records_recovery(self):
        scenarios = dict(crash_scenarios(quick=True))
        rec = crash_point(CHAOS_BYTES, CHAOS_MSGS_QUICK, scenarios["node_crash_restart"])
        assert rec["recoveries"]
        assert all(t > CRASH_AT_US for t, _, _ in rec["recoveries"])
