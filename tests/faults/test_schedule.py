"""FaultSchedule construction-time validation and install semantics."""

import math
import pickle

import pytest

from repro.errors import MachineError
from repro.faults import (AckLoss, Corruption, CpuDegrade, CpuPause,
                          FaultSchedule, FaultRuntime, GilbertElliott,
                          LinkOutage)
from repro.machine import Cluster


class TestClauseValidation:
    @pytest.mark.parametrize("kwargs", [
        {"p_good_bad": -0.1, "loss_bad": 0.5},
        {"p_good_bad": 1.5, "loss_bad": 0.5},
        {"p_bad_good": float("nan"), "loss_bad": 0.5},
        {"loss_good": -0.01},
        {"loss_good": 1.0},          # silences the link forever
        {"loss_bad": 1.0, "p_good_bad": 0.1},
        {},                          # both loss rates zero: never fires
    ])
    def test_gilbert_elliott_rejects(self, kwargs):
        with pytest.raises(MachineError):
            FaultSchedule([GilbertElliott(**kwargs)])

    def test_gilbert_elliott_accepts_uniform_degenerate(self):
        FaultSchedule([GilbertElliott(loss_good=0.05)])

    @pytest.mark.parametrize("kwargs", [
        {},                                   # default end=inf
        {"start": -1.0, "end": 5.0},
        {"start": 5.0, "end": 5.0},           # empty window
        {"start": 9.0, "end": 5.0},           # inverted window
        {"start": float("nan"), "end": 5.0},
        {"start": 0.0, "end": float("nan")},
    ])
    def test_link_outage_rejects(self, kwargs):
        with pytest.raises(MachineError):
            FaultSchedule([LinkOutage(src=0, dst=1, **kwargs)])

    @pytest.mark.parametrize("rate", [0.0, 1.0, 1.5, -0.2])
    def test_ack_loss_rejects(self, rate):
        with pytest.raises(MachineError):
            FaultSchedule([AckLoss(rate=rate)])

    @pytest.mark.parametrize("rate", [0.0, 1.0, -0.5])
    def test_corruption_rejects(self, rate):
        with pytest.raises(MachineError):
            FaultSchedule([Corruption(rate=rate)])

    @pytest.mark.parametrize("clause", [
        CpuPause(node=0),                          # infinite window
        CpuPause(node=-1, start=0.0, end=5.0),
        CpuDegrade(node=0, start=0.0, end=5.0, factor=1.0),
        CpuDegrade(node=0, start=0.0, end=5.0, factor=0.5),
        CpuDegrade(node=0, start=0.0, end=5.0, factor=math.inf),
    ])
    def test_cpu_clause_rejects(self, clause):
        with pytest.raises(MachineError):
            FaultSchedule([clause])

    def test_non_clause_rejected(self):
        with pytest.raises(MachineError):
            FaultSchedule(["not a clause"])


class TestOverlapRejection:
    def test_same_pair_outages_overlapping(self):
        with pytest.raises(MachineError, match="overlapping"):
            FaultSchedule([
                LinkOutage(src=0, dst=1, start=0.0, end=100.0),
                LinkOutage(src=0, dst=1, start=50.0, end=150.0)])

    def test_adjacent_outages_allowed(self):
        FaultSchedule([
            LinkOutage(src=0, dst=1, start=0.0, end=100.0),
            LinkOutage(src=0, dst=1, start=100.0, end=200.0)])

    def test_different_pairs_may_overlap(self):
        FaultSchedule([
            LinkOutage(src=0, dst=1, start=0.0, end=100.0),
            LinkOutage(src=1, dst=0, start=50.0, end=150.0)])

    def test_same_node_cpu_windows_overlapping(self):
        # Pause and slowdown are one family: both claim the node's CPU.
        with pytest.raises(MachineError, match="overlapping"):
            FaultSchedule([
                CpuPause(node=0, start=0.0, end=100.0),
                CpuDegrade(node=0, start=50.0, end=150.0, factor=2.0)])

    def test_different_node_cpu_windows_may_overlap(self):
        FaultSchedule([
            CpuPause(node=0, start=0.0, end=100.0),
            CpuPause(node=1, start=50.0, end=150.0)])


class TestScheduleObject:
    def test_empty_schedule_is_falsy_and_installs_nothing(self):
        sched = FaultSchedule()
        assert len(sched) == 0 and not sched
        cluster = Cluster(nnodes=2, faults=sched)
        assert cluster.faults is None
        assert cluster.switch.faults is None

    def test_schedule_pickles(self):
        sched = FaultSchedule([
            GilbertElliott(loss_good=0.1),
            LinkOutage(src=0, dst=1, start=1.0, end=2.0),
            CpuPause(node=0, start=0.0, end=9.0)])
        clone = pickle.loads(pickle.dumps(sched))
        assert clone.clauses == sched.clauses


class TestInstall:
    def test_link_clause_node_outside_cluster(self):
        sched = FaultSchedule([
            LinkOutage(src=0, dst=5, start=0.0, end=10.0)])
        with pytest.raises(MachineError, match="outside cluster"):
            Cluster(nnodes=2, faults=sched)

    def test_cpu_clause_node_outside_cluster(self):
        sched = FaultSchedule([CpuPause(node=7, start=0.0, end=10.0)])
        with pytest.raises(MachineError, match="outside cluster"):
            Cluster(nnodes=2, faults=sched)

    def test_install_hooks_machine_layer(self):
        sched = FaultSchedule([
            GilbertElliott(loss_good=0.05),
            CpuPause(node=1, start=0.0, end=10.0)])
        cluster = Cluster(nnodes=3, faults=sched)
        rt = cluster.faults
        assert isinstance(rt, FaultRuntime)
        assert cluster.switch.faults is rt
        assert all(n.adapter.faults is rt for n in cluster.nodes)
        # CPU windows attach only to the nodes a clause names.
        assert cluster.nodes[1].cpu.faults is not None
        assert cluster.nodes[0].cpu.faults is None
        assert cluster.nodes[2].cpu.faults is None
        assert "faults" in cluster.metrics.render()

    def test_no_schedule_leaves_hooks_unset(self):
        cluster = Cluster(nnodes=2)
        assert cluster.faults is None
        assert cluster.switch.faults is None
        assert all(n.adapter.faults is None for n in cluster.nodes)
        assert all(n.cpu.faults is None for n in cluster.nodes)
        assert "faults" not in cluster.metrics.render()
