"""Shared helpers for fault-injection tests."""

from repro.machine import Cluster
from repro.machine.config import SP_1998


def run_put_workload(faults, *, seed=11, msgs=6, nbytes=1024,
                     config=SP_1998, nnodes=2):
    """Rank 0 streams completion-waited puts to rank 1 under ``faults``.

    Returns ``(cluster, records)`` where ``records`` carries the
    sender's post-fence transport counters and the receiver's
    byte-for-byte integrity verdict.
    """
    payload = bytes(i % 251 for i in range(nbytes))
    records: dict = {}

    def main(task):
        lapi = task.lapi
        mem = task.memory
        buf = mem.malloc(nbytes)
        yield from lapi.gfence()
        if task.rank == 0:
            src = mem.malloc(nbytes)
            mem.write(src, payload)
            cmpl = lapi.counter()
            for _ in range(msgs):
                yield from lapi.put(1, nbytes, buf, src, cmpl_cntr=cmpl)
                yield from lapi.waitcntr(cmpl, 1)
        yield from lapi.gfence()
        if task.rank == 0:
            tr = lapi.transport
            records["retransmissions"] = tr.retransmissions
            records["karn_skips"] = tr.karn_skips
            records["degraded_events"] = tr.peer_degraded_events
            records["rto"] = tr.peer_rto(1)
            records["health"] = tr.peer_health(1)
        if task.rank == 1:
            records["intact"] = mem.read(buf, nbytes) == payload

    cluster = Cluster(nnodes=nnodes, config=config, seed=seed,
                      faults=faults)
    cluster.run_job(main, stacks=("lapi",), interrupt_mode=False,
                    until=5_000_000.0)
    return cluster, records
