"""Shared fixtures for MPL tests."""

import pytest

from repro.machine import Cluster
from repro.machine.config import SP_1998


def run_mpl(fn, nnodes=2, *, config=SP_1998, interrupt_mode=True,
            eager_limit=None, seed=1, **kw):
    """Run an SPMD job with only the MPL stack initialized."""
    cluster = Cluster(nnodes=nnodes, config=config, seed=seed)
    return cluster.run_job(fn, stacks=("mpl",),
                           interrupt_mode=interrupt_mode,
                           eager_limit=eager_limit, **kw)


@pytest.fixture(params=[True, False], ids=["interrupt", "polling"])
def progress_mode(request):
    return request.param
