"""Tests for MPL probe / iprobe."""

import pytest

from repro.mpl import ANY_SOURCE, ANY_TAG

from .conftest import run_mpl


class TestIprobe:
    def test_nothing_pending(self):
        def main(task):
            found = yield from task.mpl.iprobe(ANY_SOURCE, ANY_TAG)
            yield from task.mpl.barrier()
            return found

        assert run_mpl(main)[0] is None

    def test_sees_unexpected_message(self, progress_mode):
        def main(task):
            mpl = task.mpl
            if task.rank == 0:
                yield from mpl.send(1, b"probe me!", 9, tag=7)
                yield from mpl.barrier()
            else:
                found = None
                while found is None:
                    found = yield from mpl.iprobe(0, 7)
                    if found is None:
                        yield from task.thread.sleep(10.0)
                # Probing does not consume: the receive still works.
                data = yield from mpl.recv_bytes(0, tag=7)
                yield from mpl.barrier()
                return found, data

        results = run_mpl(main, interrupt_mode=progress_mode)
        found, data = results[1]
        assert found == (0, 7, 9)
        assert data == b"probe me!"

    def test_tag_filter(self):
        def main(task):
            mpl = task.mpl
            if task.rank == 0:
                yield from mpl.send(1, b"xx", 2, tag=5)
                yield from mpl.barrier()
            else:
                # Wait until the message is definitely queued.
                got = yield from mpl.probe(0, 5)
                wrong_tag = yield from mpl.iprobe(0, 6)
                yield from mpl.recv_bytes(0, tag=5)
                yield from mpl.barrier()
                return got, wrong_tag

        got, wrong = run_mpl(main)[1]
        assert got == (0, 5, 2)
        assert wrong is None


class TestProbe:
    def test_blocks_until_arrival(self, progress_mode):
        def main(task):
            mpl = task.mpl
            if task.rank == 0:
                yield from task.thread.sleep(300.0)
                yield from mpl.send(1, b"late", 4, tag=9)
                yield from mpl.barrier()
            else:
                t0 = task.now()
                found = yield from mpl.probe(ANY_SOURCE, 9)
                waited = task.now() - t0
                yield from mpl.recv_bytes(0, tag=9)
                yield from mpl.barrier()
                return found, waited

        found, waited = run_mpl(main, interrupt_mode=progress_mode)[1]
        assert found == (0, 9, 4)
        assert waited >= 290.0

    def test_probe_then_sized_receive(self):
        """The classic probe pattern: learn the size, then receive."""
        def main(task):
            mpl = task.mpl
            if task.rank == 0:
                yield from mpl.send(1, b"z" * 777, 777, tag=3)
                yield from mpl.barrier()
            else:
                src, tag, nbytes = yield from mpl.probe(ANY_SOURCE,
                                                        ANY_TAG)
                req = yield from mpl.recv(src, tag, None, nbytes)
                yield from mpl.barrier()
                return nbytes, len(req.data)

        assert run_mpl(main)[1] == (777, 777)
