"""Tests for MPL waitany."""

import pytest

from repro.errors import MplError

from .conftest import run_mpl


class TestWaitany:
    def test_returns_first_complete_index(self):
        def main(task):
            mpl = task.mpl
            if task.rank == 0:
                # Post two receives; only the tag-2 message will come
                # first (tag-1 arrives later).
                r1 = yield from mpl.irecv(1, 1, None, 64)
                r2 = yield from mpl.irecv(1, 2, None, 64)
                idx = yield from mpl.waitany([r1, r2])
                first_tag = [1, 2][idx]
                yield from mpl.waitall([r1, r2])
                yield from mpl.barrier()
                return first_tag
            yield from mpl.send(0, b"second-tag", 10, tag=2)
            yield from task.thread.sleep(500.0)
            yield from mpl.send(0, b"first-tag!", 10, tag=1)
            yield from mpl.barrier()

        assert run_mpl(main)[0] == 2

    def test_already_complete_request(self):
        def main(task):
            mpl = task.mpl
            req = yield from mpl.isend(task.rank, b"self", 4, tag=1)
            idx = yield from mpl.waitany([req])
            yield from mpl.recv_bytes(task.rank, tag=1)
            return idx

        assert run_mpl(main, nnodes=1)[0] == 0

    def test_empty_list_rejected(self):
        def main(task):
            try:
                yield from task.mpl.waitany([])
            except MplError:
                return "rejected"

        assert run_mpl(main, nnodes=1)[0] == "rejected"
