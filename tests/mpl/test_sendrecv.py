"""Integration tests: MPL send/recv through the full machine."""

import pytest

from repro.machine.config import SP_1998

from .conftest import run_mpl


class TestEager:
    def test_small_message_roundtrip(self, progress_mode):
        def main(task):
            mpl = task.mpl
            if task.rank == 0:
                yield from mpl.send(1, b"ping", 4, tag=1)
                return (yield from mpl.recv_bytes(1, tag=2))
            data = yield from mpl.recv_bytes(0, tag=1)
            yield from mpl.send(0, b"pong", 4, tag=2)
            return data

        results = run_mpl(main, interrupt_mode=progress_mode)
        assert results == [b"pong", b"ping"]

    def test_memory_addressed_transfer(self):
        payload = bytes(range(256)) * 4

        def main(task):
            mpl = task.mpl
            buf = task.memory.malloc(1024)
            if task.rank == 0:
                task.memory.write(buf, payload)
                yield from mpl.send(1, buf, len(payload), tag=3)
            else:
                yield from mpl.recv(0, 3, buf, 1024)
                return task.memory.read(buf, len(payload))

        assert run_mpl(main)[1] == payload

    def test_buffered_send_completes_after_copy(self):
        """A small isend is complete (buffer reusable) at return."""
        def main(task):
            mpl = task.mpl
            if task.rank == 0:
                req = yield from mpl.isend(1, b"x" * 512, 512, tag=1)
                state = req.complete
                yield from mpl.barrier()
                return state, req.protocol
            yield from mpl.recv_bytes(0, tag=1)
            yield from mpl.barrier()

        state, proto = run_mpl(main)[0]
        assert state is True
        assert proto == "eager-buffered"

    def test_eager_direct_above_buffer_limit(self):
        """Between the buffer limit and eager limit: direct eager; the
        request completes only on acknowledgement."""
        cfg = SP_1998.replace(mpl_send_buffer_limit=1024,
                              mpl_eager_limit=8192)
        n = 4096

        def main(task):
            mpl = task.mpl
            if task.rank == 0:
                req = yield from mpl.isend(1, b"y" * n, n, tag=1)
                at_return = req.complete
                yield from mpl.wait(req)
                return at_return, req.protocol
            yield from mpl.recv_bytes(0, tag=1)

        at_return, proto = run_mpl(main, config=cfg)[0]
        assert at_return is False
        assert proto == "eager-direct"

    def test_early_arrival_extra_copy(self, progress_mode):
        """Message arriving before the receive is posted lands in the
        early-arrival buffer and is copied again at receive time."""
        def main(task):
            mpl = task.mpl
            if task.rank == 0:
                yield from mpl.send(1, b"early bird" * 10, 100, tag=7)
                yield from mpl.barrier()
            else:
                # Delay the receive until the message must have arrived.
                yield from task.thread.sleep(500.0)
                data = yield from mpl.recv_bytes(0, tag=7)
                yield from mpl.barrier()
                return data, mpl.stats.early_arrival_bytes

        data, early = run_mpl(main, interrupt_mode=progress_mode)[1]
        assert data == b"early bird" * 10
        if progress_mode:
            # Interrupt mode: the message was assembled before the
            # receive posted, forcing the extra copy.
            assert early == 100
        else:
            # Polling mode: nothing processed the packets until the
            # receive posted, so they land directly -- no early copy.
            assert early == 0

    def test_posted_receive_single_copy(self):
        """Receive posted first: data lands directly, no early bytes."""
        def main(task):
            mpl = task.mpl
            if task.rank == 0:
                yield from task.thread.sleep(200.0)
                yield from mpl.send(1, b"direct" * 10, 60, tag=7)
                yield from mpl.barrier()
            else:
                req = yield from mpl.irecv(0, 7, None, 60)
                yield from mpl.wait(req)
                yield from mpl.barrier()
                return req.data, mpl.stats.early_arrival_bytes

        data, early = run_mpl(main)[1]
        assert data == b"direct" * 10
        assert early == 0


class TestRendezvous:
    def test_large_message_uses_rendezvous(self, progress_mode):
        n = SP_1998.mpl_eager_limit * 4
        payload = bytes(i % 251 for i in range(n))

        def main(task):
            mpl = task.mpl
            if task.rank == 0:
                req = yield from mpl.isend(1, payload, n, tag=9)
                yield from mpl.wait(req)
                yield from mpl.barrier()
                return req.protocol
            data = yield from mpl.recv_bytes(0, tag=9)
            yield from mpl.barrier()
            return data

        results = run_mpl(main, interrupt_mode=progress_mode)
        assert results[0] == "rendezvous"
        assert results[1] == payload

    def test_rendezvous_avoids_early_copy(self):
        """Rendezvous data flows only after the receive posts: no
        early-arrival buffering even when the send starts first."""
        n = SP_1998.mpl_eager_limit * 2

        def main(task):
            mpl = task.mpl
            if task.rank == 0:
                yield from mpl.send(1, b"r" * n, n, tag=9)
                yield from mpl.barrier()
            else:
                yield from task.thread.sleep(400.0)
                data = yield from mpl.recv_bytes(0, tag=9)
                yield from mpl.barrier()
                return len(data), mpl.stats.early_arrival_bytes

        got_len, early = run_mpl(main)[1]
        assert got_len == n
        assert early == 0

    def test_eager_limit_override(self):
        """MP_EAGER_LIMIT=64K pushes the protocol switch out (the
        Figure 2 environment-variable experiment)."""
        n = 32 * 1024

        def main(task):
            mpl = task.mpl
            if task.rank == 0:
                req = yield from mpl.isend(1, b"e" * n, n, tag=1)
                yield from mpl.wait(req)
                yield from mpl.barrier()
                return req.protocol
            yield from mpl.recv_bytes(0, tag=1)
            yield from mpl.barrier()

        assert run_mpl(main)[0] == "rendezvous"  # default 4K limit
        assert run_mpl(main, eager_limit=65536)[0] == "eager-direct"

    def test_eager_limit_above_max_rejected(self):
        from repro.errors import MplError
        with pytest.raises(MplError):
            run_mpl(lambda task: iter(()), eager_limit=1 << 20)


class TestOrderingSemantics:
    def test_same_source_messages_recv_in_send_order(self, progress_mode):
        """MPI guarantee: messages from one source match in send order,
        even though the fabric reorders packets."""
        cfg = SP_1998.replace(switch_group_size=1, route_jitter=5.0)
        count = 10

        def main(task):
            mpl = task.mpl
            if task.rank == 0:
                for i in range(count):
                    yield from mpl.send(1, bytes([i]) * 32, 32, tag=4)
                yield from mpl.barrier()
            else:
                got = []
                for _ in range(count):
                    data = yield from mpl.recv_bytes(0, tag=4)
                    got.append(data[0])
                yield from mpl.barrier()
                return got

        results = run_mpl(main, config=cfg, seed=3,
                          interrupt_mode=progress_mode)
        assert results[1] == list(range(count))

    def test_tag_selective_receive(self):
        def main(task):
            mpl = task.mpl
            if task.rank == 0:
                yield from mpl.send(1, b"tagA", 4, tag=1)
                yield from mpl.send(1, b"tagB", 4, tag=2)
                yield from mpl.barrier()
            else:
                b = yield from mpl.recv_bytes(0, tag=2)
                a = yield from mpl.recv_bytes(0, tag=1)
                yield from mpl.barrier()
                return a, b

        a, b = run_mpl(main)[1]
        assert (a, b) == (b"tagA", b"tagB")

    def test_any_source_receive(self):
        def main(task):
            mpl = task.mpl
            from repro.mpl import ANY_SOURCE
            if task.rank == 0:
                got = []
                for _ in range(2):
                    req = yield from mpl.recv(ANY_SOURCE, 5, None, 64)
                    got.append((req.received_src, req.data))
                yield from mpl.barrier()
                return sorted(got)
            yield from mpl.send(0, bytes([task.rank]) * 4, 4, tag=5)
            yield from mpl.barrier()

        got = run_mpl(main, nnodes=3)[0]
        assert got == [(1, b"\x01" * 4), (2, b"\x02" * 4)]

    def test_send_to_self(self):
        def main(task):
            mpl = task.mpl
            yield from mpl.send(task.rank, b"loopback", 8, tag=1)
            return (yield from mpl.recv_bytes(task.rank, tag=1))

        assert run_mpl(main, nnodes=1)[0] == b"loopback"


class TestLossAndStress:
    def test_eager_survives_loss(self):
        cfg = SP_1998.replace(loss_rate=0.15)
        n = 3000

        def main(task):
            mpl = task.mpl
            if task.rank == 0:
                yield from mpl.send(1, bytes(range(256)) * 12, n, tag=1)
                yield from mpl.barrier()
            else:
                data = yield from mpl.recv_bytes(0, tag=1)
                yield from mpl.barrier()
                return data

        assert run_mpl(main, config=cfg, seed=9)[1] == \
            (bytes(range(256)) * 12)[:3000]

    def test_rendezvous_survives_loss(self):
        cfg = SP_1998.replace(loss_rate=0.1)
        n = SP_1998.mpl_eager_limit * 3

        def main(task):
            mpl = task.mpl
            if task.rank == 0:
                yield from mpl.send(1, b"R" * n, n, tag=1)
                yield from mpl.barrier()
            else:
                data = yield from mpl.recv_bytes(0, tag=1)
                yield from mpl.barrier()
                return len(data)

        assert run_mpl(main, config=cfg, seed=4)[1] == n

    def test_many_outstanding_isends(self):
        count = 20

        def main(task):
            mpl = task.mpl
            if task.rank == 0:
                reqs = []
                for i in range(count):
                    r = yield from mpl.isend(1, bytes([i]) * 100, 100,
                                             tag=i)
                    reqs.append(r)
                yield from mpl.waitall(reqs)
                yield from mpl.barrier()
            else:
                out = []
                for i in reversed(range(count)):  # receive backwards
                    data = yield from mpl.recv_bytes(0, tag=i)
                    out.append(data[0])
                yield from mpl.barrier()
                return out

        assert run_mpl(main)[1] == list(reversed(range(count)))
