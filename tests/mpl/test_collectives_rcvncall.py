"""Integration tests: MPL collectives, rcvncall, lockrnc."""

import numpy as np
import pytest

from repro.machine.config import SP_1998

from .conftest import run_mpl


class TestCollectives:
    def test_barrier_synchronizes(self, progress_mode):
        def main(task):
            yield from task.thread.sleep(task.rank * 300.0)
            entered = task.now()
            yield from task.mpl.barrier()
            return entered, task.now()

        results = run_mpl(main, nnodes=4, interrupt_mode=progress_mode)
        last_entry = max(e for e, _ in results)
        assert all(x >= last_entry for _, x in results)

    @pytest.mark.parametrize("nnodes", [2, 3, 4, 5, 8])
    def test_bcast_all_sizes(self, nnodes):
        def main(task):
            data = b"payload-xyz" if task.rank == 0 else None
            out = yield from task.mpl.bcast(data, root=0)
            return out

        assert run_mpl(main, nnodes=nnodes) == [b"payload-xyz"] * nnodes

    def test_bcast_nonzero_root(self):
        def main(task):
            data = b"from-two" if task.rank == 2 else None
            out = yield from task.mpl.bcast(data, root=2)
            return out

        assert run_mpl(main, nnodes=4) == [b"from-two"] * 4

    def test_reduce_sum(self):
        def main(task):
            total = yield from task.mpl.reduce(task.rank + 1,
                                               lambda a, b: a + b)
            return total

        results = run_mpl(main, nnodes=5)
        assert results[0] == 15
        assert all(r is None for r in results[1:])

    def test_reduce_numpy_arrays(self):
        def main(task):
            arr = np.full(8, float(task.rank + 1))
            out = yield from task.mpl.reduce(arr, np.add)
            return None if out is None else out.tolist()

        results = run_mpl(main, nnodes=4)
        assert results[0] == [10.0] * 8

    def test_allreduce(self):
        def main(task):
            v = yield from task.mpl.allreduce(task.rank, max)
            return v

        assert run_mpl(main, nnodes=4) == [3, 3, 3, 3]

    def test_barrier_single_rank(self):
        def main(task):
            yield from task.mpl.barrier()
            return "ok"

        assert run_mpl(main, nnodes=1) == ["ok"]


class TestRcvncall:
    def test_handler_runs_on_message(self, progress_mode):
        seen = []

        def main(task):
            mpl = task.mpl
            if task.rank == 1:
                def handler(t, src, tag, data):
                    seen.append((t.rank, src, tag, data))
                mpl.rcvncall(42, handler)
            yield from mpl.barrier()
            if task.rank == 0:
                yield from mpl.send(1, b"req-payload", 11, tag=42)
            yield from mpl.barrier()
            yield from mpl.barrier()  # give handlers time to drain

        run_mpl(main, interrupt_mode=progress_mode)
        assert seen == [(1, 0, 42, b"req-payload")]

    def test_handler_can_reply(self):
        """The GA-on-MPL pattern: request handler sends the reply."""
        def main(task):
            mpl = task.mpl
            if task.rank == 1:
                def handler(t, src, tag, data):
                    yield from t.mpl.send(src, data[::-1], len(data),
                                          tag=43)
                mpl.rcvncall(42, handler)
            yield from mpl.barrier()
            if task.rank == 0:
                yield from mpl.send(1, b"abcdef", 6, tag=42)
                reply = yield from mpl.recv_bytes(1, tag=43)
                yield from mpl.barrier()
                return reply
            yield from mpl.barrier()

        assert run_mpl(main)[0] == b"fedcba"

    def test_handler_context_cost_charged(self):
        """The rcvncall reply path must cost at least the AIX
        context-creation premium over a plain recv."""
        def via_rcvncall(task):
            mpl = task.mpl
            if task.rank == 1:
                def handler(t, src, tag, data):
                    yield from t.mpl.send(src, data, len(data), tag=43)
                mpl.rcvncall(42, handler)
            yield from mpl.barrier()
            if task.rank == 0:
                t0 = task.now()
                yield from mpl.send(1, b"x" * 4, 4, tag=42)
                yield from mpl.recv_bytes(1, tag=43)
                rtt = task.now() - t0
                yield from mpl.barrier()
                return rtt
            yield from mpl.barrier()

        def via_recv(task):
            mpl = task.mpl
            if task.rank == 0:
                t0 = task.now()
                yield from mpl.send(1, b"x" * 4, 4, tag=42)
                yield from mpl.recv_bytes(1, tag=43)
                rtt = task.now() - t0
                yield from mpl.barrier()
                return rtt
            else:
                data = yield from mpl.recv_bytes(0, tag=42)
                yield from mpl.send(0, data, len(data), tag=43)
                yield from mpl.barrier()

        rtt_rcvncall = run_mpl(via_rcvncall)[0]
        rtt_recv = run_mpl(via_recv)[0]
        # The premium is dominated by the context-creation cost (other
        # interrupt-path details shift it slightly in either direction).
        assert rtt_rcvncall > rtt_recv + \
            SP_1998.rcvncall_context_cost * 0.6

    def test_multiple_requests_serviced(self):
        count = 6

        def main(task):
            mpl = task.mpl
            if task.rank == 1:
                def handler(t, src, tag, data):
                    yield from t.mpl.send(src, data, len(data), tag=43)
                mpl.rcvncall(42, handler)
            yield from mpl.barrier()
            if task.rank == 0:
                out = []
                for i in range(count):
                    yield from mpl.send(1, bytes([i]) * 8, 8, tag=42)
                    reply = yield from mpl.recv_bytes(1, tag=43)
                    out.append(reply[0])
                yield from mpl.barrier()
                return out
            yield from mpl.barrier()

        assert run_mpl(main)[0] == list(range(count))


class TestLockrnc:
    def test_lockrnc_defers_interrupts(self):
        """With interrupts disabled, a message sits unprocessed; on
        unlock, it is serviced (GA-on-MPL's atomicity window)."""
        def main(task):
            mpl = task.mpl
            if task.rank == 1:
                hits = []

                def handler(t, src, tag, data):
                    hits.append(task.now())
                mpl.rcvncall(42, handler)
                yield from mpl.barrier()
                mpl.lockrnc(True)  # ---- critical section begins
                yield from task.thread.sleep(800.0)
                during = list(hits)
                mpl.lockrnc(False)  # ---- ends; interrupt fires now
                yield from mpl.barrier()
                return during, hits
            yield from mpl.barrier()
            yield from task.thread.sleep(100.0)
            yield from mpl.send(1, b"irq", 3, tag=42)
            yield from mpl.barrier()

        during, after = run_mpl(main)[1]
        assert during == []  # nothing serviced inside the lock
        assert len(after) == 1  # serviced after unlock

    def test_unlock_without_lock_rejected(self):
        from repro.errors import MplError

        def main(task):
            try:
                task.mpl.lockrnc(False)
            except MplError:
                return "rejected"
            yield from task.mpl.barrier()

        assert run_mpl(main, nnodes=1)[0] == "rejected"
