"""Property-based tests for MPL packetization and matching."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.config import SP_1998
from repro.mpl import ANY_SOURCE, ANY_TAG
from repro.mpl.matching import MatchEngine, MessageState, RecvRequest
from repro.mpl.protocol import cts_packet, data_packets, rts_packet


class TestDataPacketsProperties:
    @given(st.integers(0, 3 * SP_1998.mpl_payload),
           st.integers(0, 1 << 20), st.booleans())
    @settings(max_examples=60)
    def test_roundtrip_and_envelope(self, n, tag, rndv):
        data = bytes(i % 251 for i in range(n))
        pkts = data_packets(SP_1998, 0, 1, 7, tag, data, is_rndv=rndv)
        # Exactly one envelope, on the first packet.
        firsts = [p for p in pkts if p.info.get("is_first")]
        assert len(firsts) == 1
        assert firsts[0] is pkts[0]
        assert firsts[0].info["tag"] == tag
        assert firsts[0].info["total"] == n
        assert firsts[0].info["is_rndv"] == rndv
        # Offsets partition the payload exactly.
        buf = bytearray(n)
        for p in pkts:
            p.validate(SP_1998.packet_size)
            off = p.info["offset"]
            buf[off:off + len(p.payload)] = p.payload
        assert bytes(buf) == data

    def test_control_packets(self):
        rts = rts_packet(SP_1998, 0, 1, 5, 9, 100000)
        assert rts.kind == "rts"
        assert rts.info["total"] == 100000
        cts = cts_packet(SP_1998, 1, 0, 5)
        assert cts.kind == "cts"
        assert cts.payload == b""


def _env(src, seq, tag=1, total=10):
    m = MessageState(src, seq)
    m.set_envelope(tag, total, False)
    return m


class TestMatchingStateful:
    """Randomized interleavings of posts and arrivals preserve the
    matching invariants: every message matches at most one receive,
    wildcards respect arrival/post order, nothing is lost."""

    @given(st.data())
    @settings(max_examples=60)
    def test_random_interleaving(self, data):
        eng = MatchEngine(0)
        n_msgs = data.draw(st.integers(1, 12))
        tags = [data.draw(st.integers(0, 2)) for _ in range(n_msgs)]
        arrival_order = data.draw(st.permutations(range(n_msgs)))

        matched_pairs = []
        posted = []
        pending_msgs = list(arrival_order)

        steps = data.draw(st.integers(n_msgs, 3 * n_msgs))
        for _ in range(steps):
            do_post = data.draw(st.booleans())
            if do_post and len(posted) < n_msgs:
                tag = data.draw(st.sampled_from([ANY_TAG, 0, 1, 2]))
                req = RecvRequest(ANY_SOURCE, tag, None, 1 << 20)
                posted.append(req)
                hit = eng.post_recv(req)
                if hit is not None:
                    matched_pairs.append((hit, req))
            elif pending_msgs:
                seq = pending_msgs.pop(0)
                msg = _env(src=0, seq=seq, tag=tags[seq])
                for env in eng.admit_envelope(msg):
                    req = eng.match_arrival(env)
                    if req is not None:
                        matched_pairs.append((env, req))

        # Invariant 1: a message matches at most one request & vice
        # versa.
        msgs = [m for m, _ in matched_pairs]
        reqs = [r for _, r in matched_pairs]
        assert len(set(map(id, msgs))) == len(msgs)
        assert len(set(map(id, reqs))) == len(reqs)
        # Invariant 2: matched tags are compatible.
        for m, r in matched_pairs:
            assert r.tag == ANY_TAG or r.tag == m.tag
        # Invariant 3: conservation -- everything is matched, queued
        # unexpected, parked behind a gap, or never arrived.
        parked = sum(len(s.parked) for s in eng._streams.values())
        accounted = (len(matched_pairs) + len(eng.unexpected)
                     + parked + len(pending_msgs))
        assert accounted == n_msgs

    @given(st.permutations(list(range(8))))
    def test_in_order_matching_regardless_of_arrival(self, order):
        """With wildcard receives pre-posted, messages match in SEND
        order even under arbitrary arrival order."""
        eng = MatchEngine(0)
        reqs = []
        for _ in range(8):
            r = RecvRequest(ANY_SOURCE, ANY_TAG, None, 1 << 20)
            eng.post_recv(r)
            reqs.append(r)
        for seq in order:
            msg = _env(src=3, seq=seq, tag=seq)
            for env in eng.admit_envelope(msg):
                eng.match_arrival(env)
        # Request k received the message with send-sequence k.
        for k, r in enumerate(reqs):
            assert r.message is not None
            assert r.message.msg_seq == k
