"""Unit tests for the MPL matching engine (no simulation needed)."""

import pytest

from repro.errors import MplError
from repro.mpl import ANY_SOURCE, ANY_TAG
from repro.mpl.matching import MatchEngine, MessageState, RecvRequest


def env(src=0, seq=0, tag=1, total=10, rndv=False):
    m = MessageState(src, seq)
    m.set_envelope(tag, total, rndv)
    return m


class TestEnvelopeOrdering:
    def test_in_order_admission(self):
        eng = MatchEngine(0)
        assert [m.msg_seq for m in eng.admit_envelope(env(seq=0))] == [0]
        assert [m.msg_seq for m in eng.admit_envelope(env(seq=1))] == [1]

    def test_gap_parks_envelope(self):
        eng = MatchEngine(0)
        assert eng.admit_envelope(env(seq=1)) == []
        assert eng.envelopes_parked == 1
        ready = eng.admit_envelope(env(seq=0))
        assert [m.msg_seq for m in ready] == [0, 1]

    def test_large_scramble_restores_order(self):
        eng = MatchEngine(0)
        order = [4, 1, 3, 0, 2]
        released = []
        for seq in order:
            released += [m.msg_seq for m in eng.admit_envelope(env(seq=seq))]
        assert released == [0, 1, 2, 3, 4]

    def test_per_source_independence(self):
        eng = MatchEngine(0)
        assert eng.admit_envelope(env(src=1, seq=1)) == []
        # Source 2's stream is unaffected by source 1's gap.
        assert len(eng.admit_envelope(env(src=2, seq=0))) == 1

    def test_duplicate_admission_rejected(self):
        eng = MatchEngine(0)
        eng.admit_envelope(env(seq=0))
        with pytest.raises(MplError):
            eng.admit_envelope(env(seq=0))


class TestMatching:
    def test_posted_receive_matches(self):
        eng = MatchEngine(0)
        req = RecvRequest(0, 1, addr=None, maxlen=100)
        assert eng.post_recv(req) is None
        m = env(src=0, tag=1)
        got = eng.match_arrival(m)
        assert got is req
        assert m.recv_req is req
        assert req.received_src == 0

    def test_unmatched_goes_unexpected(self):
        eng = MatchEngine(0)
        m = env()
        assert eng.match_arrival(m) is None
        assert m in eng.unexpected

    def test_post_recv_finds_unexpected(self):
        eng = MatchEngine(0)
        m = env(src=3, tag=9)
        eng.match_arrival(m)
        req = RecvRequest(3, 9, None, 100)
        assert eng.post_recv(req) is m
        assert eng.matched_unexpected == 1

    def test_wildcard_source(self):
        eng = MatchEngine(0)
        req = RecvRequest(ANY_SOURCE, 5, None, 100)
        eng.post_recv(req)
        assert eng.match_arrival(env(src=7, tag=5)) is req

    def test_wildcard_tag(self):
        eng = MatchEngine(0)
        req = RecvRequest(2, ANY_TAG, None, 100)
        eng.post_recv(req)
        assert eng.match_arrival(env(src=2, tag=77)) is req

    def test_non_matching_tag_skipped(self):
        eng = MatchEngine(0)
        req = RecvRequest(0, 5, None, 100)
        eng.post_recv(req)
        m = env(src=0, tag=6)
        assert eng.match_arrival(m) is None
        assert req in eng.posted

    def test_posted_queue_fifo(self):
        eng = MatchEngine(0)
        r1 = RecvRequest(ANY_SOURCE, ANY_TAG, None, 100)
        r2 = RecvRequest(ANY_SOURCE, ANY_TAG, None, 100)
        eng.post_recv(r1)
        eng.post_recv(r2)
        assert eng.match_arrival(env()) is r1
        assert eng.match_arrival(env(seq=1)) is r2

    def test_unexpected_queue_fifo(self):
        eng = MatchEngine(0)
        m1, m2 = env(seq=0), env(seq=1)
        eng.match_arrival(m1)
        eng.match_arrival(m2)
        req = RecvRequest(ANY_SOURCE, ANY_TAG, None, 100)
        assert eng.post_recv(req) is m1

    def test_truncation_is_error(self):
        eng = MatchEngine(0)
        req = RecvRequest(0, 1, None, maxlen=4)
        eng.post_recv(req)
        with pytest.raises(MplError, match="overflow"):
            eng.match_arrival(env(total=10))


class TestRcvncall:
    def test_handler_catches_unmatched(self):
        eng = MatchEngine(0)
        fn = lambda *a: None
        eng.register_rcvncall(42, fn)
        m = env(tag=42)
        assert eng.match_arrival(m) is None
        assert m.rcvncall_fn is fn
        assert m not in eng.unexpected

    def test_posted_recv_wins_over_rcvncall(self):
        eng = MatchEngine(0)
        eng.register_rcvncall(42, lambda *a: None)
        req = RecvRequest(ANY_SOURCE, 42, None, 100)
        eng.post_recv(req)
        m = env(tag=42)
        assert eng.match_arrival(m) is req
        assert m.rcvncall_fn is None

    def test_duplicate_registration_rejected(self):
        eng = MatchEngine(0)
        eng.register_rcvncall(1, lambda *a: None)
        with pytest.raises(MplError):
            eng.register_rcvncall(1, lambda *a: None)
