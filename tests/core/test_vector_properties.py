"""Property-based tests for vector packetization and reliability."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.vector import VECTOR_SUBHEADER, pack_vector_packets
from repro.machine.config import SP_1998


def _reassemble(packets, run_bases):
    """Apply packet runs into a flat address space dict."""
    memory = {}
    for p in packets:
        pos = 0
        for addr, length in p.info["runs"]:
            memory[addr] = p.payload[pos:pos + length]
            pos += length
        assert pos == len(p.payload)
    return memory


@given(st.lists(st.integers(min_value=1, max_value=3000), min_size=1,
                max_size=20))
@settings(max_examples=60)
def test_vector_packets_cover_all_runs_exactly(lengths):
    """Every byte of every run appears exactly once, in order, and no
    packet exceeds the wire limit."""
    cfg = SP_1998
    # Non-overlapping destination runs, spaced apart.
    addr = 0
    runs = []
    blobs = []
    for n in lengths:
        runs.append((addr, n))
        blobs.append(bytes((addr + i) % 251 for i in range(n)))
        addr += n + 64

    def read_run(ridx, off, length):
        return blobs[ridx][off:off + length]

    packets = pack_vector_packets(cfg, 0, 1, 1, "putv", runs, read_run)
    # Wire-size invariant.
    for p in packets:
        assert p.size <= cfg.packet_size
        assert p.header_bytes == cfg.lapi_header + \
            VECTOR_SUBHEADER * len(p.info["runs"])
    # Reassemble and compare byte-for-byte.
    out = bytearray(addr)
    seen = 0
    for p in packets:
        pos = 0
        for a, length in p.info["runs"]:
            out[a:a + length] = p.payload[pos:pos + length]
            pos += length
            seen += length
    assert seen == sum(lengths)
    for (a, n), blob in zip(runs, blobs):
        assert bytes(out[a:a + n]) == blob


@given(st.integers(min_value=1, max_value=4))
def test_vector_packets_tiny_runs_pack_densely(scale):
    """Many tiny runs share packets instead of one packet per run."""
    cfg = SP_1998
    count = 40 * scale
    runs = [(i * 16, 8) for i in range(count)]

    def read_run(ridx, off, length):
        return b"\0" * length

    packets = pack_vector_packets(cfg, 0, 1, 1, "putv", runs, read_run)
    per_packet = (cfg.packet_size - cfg.lapi_header) // \
        (VECTOR_SUBHEADER + 8)
    assert len(packets) <= count // per_packet + 1


class TestReliabilityProperties:
    @given(seqs=st.permutations(list(range(30))))
    @settings(max_examples=40)
    def test_dedup_exactly_once_under_any_order(self, seqs):
        from repro.core.reliability import _PeerRx
        rx = _PeerRx()
        delivered = [s for s in seqs if rx.fresh(s)]
        assert sorted(delivered) == list(range(30))
        # Replays never deliver again.
        assert not any(rx.fresh(s) for s in seqs)

    @given(st.lists(st.integers(0, 99), min_size=1, max_size=300))
    @settings(max_examples=40)
    def test_dedup_with_duplicates(self, seqs):
        from repro.core.reliability import _PeerRx
        rx = _PeerRx()
        delivered = [s for s in seqs if rx.fresh(s)]
        assert sorted(delivered) == sorted(set(seqs))


class TestCpuExclusionProperty:
    @given(st.lists(st.tuples(st.floats(0.5, 5.0), st.integers(0, 2)),
                    min_size=2, max_size=10))
    @settings(max_examples=30)
    def test_execute_intervals_never_overlap(self, jobs):
        """No two threads' execute() windows may overlap on one CPU."""
        from repro.machine import Cpu
        from repro.machine.config import SP_1998
        from repro.sim import Simulator

        sim = Simulator()
        cpu = Cpu(sim, 0, SP_1998)
        spans = []

        def body(cost, prio):
            def run(thread):
                start = sim.now
                yield from thread.execute(cost)
                spans.append((start, sim.now))
            return run

        threads = [cpu.spawn(body(c, p), priority=p) for c, p in jobs]
        sim.run_until_complete(sim.all_of([t.process for t in threads]))
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2 + 1e-9, f"overlap: {(s1, e1)} vs {(s2, e2)}"
