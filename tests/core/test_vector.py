"""Tests for the LAPI_Putv/Getv extension (section 6 future work #1)."""

import pytest

from repro.errors import LapiError
from repro.machine.config import SP_1998

from .conftest import run_spmd


def _strided_layout(mem, nruns=6, run_len=40, stride=64):
    """Allocate a region with ``nruns`` runs spaced ``stride`` apart."""
    base = mem.malloc(nruns * stride)
    addrs = [base + i * stride for i in range(nruns)]
    return base, addrs


class TestPutv:
    def test_scatters_all_runs(self, progress_mode):
        nruns, run_len = 6, 40

        def main(task):
            lapi = task.lapi
            mem = task.memory
            _, dst = _strided_layout(mem, nruns, run_len)
            src = mem.malloc(nruns * run_len)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                for i in range(nruns):
                    mem.write(src + i * run_len,
                              bytes([i + 1]) * run_len)
                runs = [(dst[i], src + i * run_len, run_len)
                        for i in range(nruns)]
                yield from lapi.putv(1, runs, tgt_cntr=tgt.id)
                yield from lapi.fence()
            else:
                yield from lapi.waitcntr(tgt, 1)
                return [mem.read(dst[i], run_len) for i in range(nruns)]

        results = run_spmd(main, interrupt_mode=progress_mode)
        for i, blob in enumerate(results[1]):
            assert blob == bytes([i + 1]) * 40

    def test_single_message_many_runs(self):
        """All runs travel as one message: one message id, packets
        packed densely (far fewer than one packet per run)."""
        nruns = 50
        run_len = 32

        def main(task):
            lapi = task.lapi
            mem = task.memory
            _, dst = _strided_layout(mem, nruns, run_len)
            src = mem.malloc(nruns * run_len)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                runs = [(dst[i], src + i * run_len, run_len)
                        for i in range(nruns)]
                before = task.node.adapter.packets_sent
                yield from lapi.putv(1, runs, tgt_cntr=tgt.id)
                yield from lapi.fence()
                sent = task.node.adapter.packets_sent - before
                yield from lapi.gfence()
                return sent
            yield from lapi.waitcntr(tgt, 1)
            yield from lapi.gfence()

        sent = run_spmd(main)[0]
        # 50 runs x 32B = 1600B of data + subheaders: 2-3 packets, not 50.
        assert sent <= 4

    def test_long_run_straddles_packets(self):
        n = SP_1998.lapi_payload * 2 + 100

        def main(task):
            lapi = task.lapi
            mem = task.memory
            dst = mem.malloc(n)
            src = mem.malloc(n)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                mem.write(src, bytes(i % 251 for i in range(n)))
                yield from lapi.putv(1, [(dst, src, n)],
                                     tgt_cntr=tgt.id)
                yield from lapi.fence()
            else:
                yield from lapi.waitcntr(tgt, 1)
                return mem.read(dst, n)

        assert run_spmd(main)[1] == bytes(i % 251 for i in range(n))

    def test_counters_and_local_fast_path(self):
        def main(task):
            lapi = task.lapi
            mem = task.memory
            dst = mem.malloc(64)
            src = mem.malloc(64)
            mem.write(src, b"V" * 64)
            org = lapi.counter()
            tgt = lapi.counter()
            yield from lapi.putv(task.rank, [(dst, src, 64)],
                                 tgt_cntr=tgt.id, org_cntr=org)
            yield from lapi.waitcntr(tgt, 1)
            yield from lapi.waitcntr(org, 1)
            return mem.read(dst, 64)

        assert run_spmd(main, nnodes=1)[0] == b"V" * 64

    def test_empty_runs_rejected(self):
        def main(task):
            try:
                yield from task.lapi.putv(0, [])
            except LapiError:
                return "rejected"

        assert run_spmd(main, nnodes=1)[0] == "rejected"


class TestGetv:
    def test_gathers_all_runs(self, progress_mode):
        nruns, run_len = 5, 48

        def main(task):
            lapi = task.lapi
            mem = task.memory
            _, remote = _strided_layout(mem, nruns, run_len)
            local = mem.malloc(nruns * run_len)
            if task.rank == 1:
                for i in range(nruns):
                    mem.write(remote[i], bytes([0x40 + i]) * run_len)
            yield from lapi.gfence()
            if task.rank == 0:
                org = lapi.counter()
                runs = [(remote[i], local + i * run_len, run_len)
                        for i in range(nruns)]
                yield from lapi.getv(1, runs, org_cntr=org)
                yield from lapi.waitcntr(org, 1)
                data = [mem.read(local + i * run_len, run_len)
                        for i in range(nruns)]
                yield from lapi.gfence()
                return data
            yield from lapi.gfence()

        results = run_spmd(main, interrupt_mode=progress_mode)
        for i, blob in enumerate(results[0]):
            assert blob == bytes([0x40 + i]) * 48

    def test_many_runs_multi_request_packets(self):
        """More runs than fit one request packet still work."""
        nruns = 100  # > GETV_RUNS_PER_PACKET

        def main(task):
            lapi = task.lapi
            mem = task.memory
            _, remote = _strided_layout(mem, nruns, 16, stride=24)
            local = mem.malloc(nruns * 16)
            if task.rank == 1:
                for i in range(nruns):
                    mem.write(remote[i], bytes([i % 251]) * 16)
            yield from lapi.gfence()
            if task.rank == 0:
                org = lapi.counter()
                runs = [(remote[i], local + i * 16, 16)
                        for i in range(nruns)]
                yield from lapi.getv(1, runs, org_cntr=org)
                yield from lapi.waitcntr(org, 1)
                ok = all(mem.read(local + i * 16, 16)
                         == bytes([i % 251]) * 16
                         for i in range(nruns))
                yield from lapi.gfence()
                return ok
            yield from lapi.gfence()

        assert run_spmd(main)[0] is True

    def test_getv_survives_loss(self):
        cfg = SP_1998.replace(loss_rate=0.15)

        def main(task):
            lapi = task.lapi
            mem = task.memory
            _, remote = _strided_layout(mem, 4, 64)
            local = mem.malloc(4 * 64)
            if task.rank == 1:
                for i in range(4):
                    mem.write(remote[i], bytes([i + 1]) * 64)
            yield from lapi.gfence()
            if task.rank == 0:
                org = lapi.counter()
                runs = [(remote[i], local + i * 64, 64)
                        for i in range(4)]
                yield from lapi.getv(1, runs, org_cntr=org)
                yield from lapi.waitcntr(org, 1)
                ok = all(mem.read(local + i * 64, 64)
                         == bytes([i + 1]) * 64 for i in range(4))
                yield from lapi.gfence()
                return ok
            yield from lapi.gfence()

        assert run_spmd(main, config=cfg, seed=5)[0] is True


class TestGaVectorBackend:
    def test_ga_roundtrip_with_vector_rmc(self):
        import numpy as np

        from repro.ga.config import GA_DEFAULTS
        from repro.machine import Cluster

        data = np.arange(40 * 40, dtype=np.float64).reshape(40, 40)

        def main(task):
            ga = task.ga
            h = yield from ga.create((128, 128))
            yield from ga.zero(h)
            sec = (10, 49, 10, 49)
            if task.rank == 0:
                yield from ga.put_ndarray(h, sec, data)
            yield from ga.sync()
            got = yield from ga.get_ndarray(h, sec)
            return bool(np.array_equal(got, data))

        cluster = Cluster(nnodes=4, seed=2)
        results = cluster.run_job(
            main, ga_backend="lapi",
            ga_config=GA_DEFAULTS.replace(use_vector_rmc=True))
        assert all(results)
