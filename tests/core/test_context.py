"""Unit tests for LAPI context state containers."""

import pytest

from repro.core.context import (GetPending, LapiContext, RecvAssembly,
                                RmwPending, SendState)
from repro.errors import LapiError
from repro.sim import Simulator


@pytest.fixture
def ctx():
    return LapiContext(Simulator(), rank=0, size=4)


class TestSendState:
    def test_completion_via_acks(self):
        st = SendState(1, 2, total_packets=3, org_cntr=None,
                       org_counted=True)
        fired = []
        st.on_complete = lambda: fired.append(True)
        st.ack_one()
        st.ack_one()
        assert not st.complete and not fired
        st.ack_one()
        assert st.complete
        assert fired == [True]

    def test_single_packet_message(self):
        st = SendState(1, 2, total_packets=1, org_cntr=None,
                       org_counted=True)
        st.on_complete = lambda: None
        st.ack_one()
        assert st.complete


class TestRecvAssembly:
    def test_put_assembly_completion(self):
        asm = RecvAssembly(src=1, msg_id=5, mtype="put", total_len=100)
        asm.hdr_seen = True
        asm.received = 99
        assert not asm.complete
        asm.received = 100
        assert asm.complete

    def test_incomplete_without_header(self):
        asm = RecvAssembly(src=1, msg_id=5, mtype="am", total_len=0)
        assert not asm.complete  # header not seen yet
        asm.hdr_seen = True
        assert asm.complete

    def test_stash_holds_early_packets(self):
        asm = RecvAssembly(src=1, msg_id=5, mtype="am", total_len=64)
        asm.stash.append((32, b"late-half"))
        assert len(asm.stash) == 1
        assert not asm.complete


class TestPendings:
    def test_get_pending(self):
        p = GetPending(1, 2, org_addr=100, length=10, org_cntr=None)
        assert not p.complete
        p.received = 10
        assert p.complete

    def test_rmw_pending(self):
        p = RmwPending(req_id=7, target=2, prev_addr=None,
                       org_cntr=None)
        assert not p.done
        p.prev_value = 42
        p.done = True
        assert p.prev_value == 42


class TestContext:
    def test_counter_registry(self, ctx):
        c1 = ctx.new_counter("a")
        c2 = ctx.new_counter("b")
        assert c1.id != c2.id
        assert ctx.counter_by_id(c1.id) is c1

    def test_unknown_counter_rejected(self, ctx):
        with pytest.raises(LapiError, match="counter"):
            ctx.counter_by_id(99)

    def test_counter_change_notifies_progress(self, ctx):
        woken = []
        ev = ctx.progress_ws.wait()
        ev.callbacks.append(lambda e: woken.append(1))
        c = ctx.new_counter()
        c.add(1)
        assert ev.triggered

    def test_msg_and_req_ids_unique(self, ctx):
        ids = {ctx.new_msg_id() for _ in range(100)}
        assert len(ids) == 100
        rids = {ctx.new_req_id() for _ in range(100)}
        assert len(rids) == 100

    def test_handler_registry(self, ctx):
        fn = lambda *a: (None, None, None)
        ctx.handlers.append(fn)
        assert ctx.handler_by_id(0) is fn
        with pytest.raises(LapiError, match="handler"):
            ctx.handler_by_id(1)
        with pytest.raises(LapiError, match="handler"):
            ctx.handler_by_id(-1)

    def test_fence_accounting(self, ctx):
        assert ctx.outstanding_to() == 0
        ctx.op_issued(2)
        ctx.op_issued(2)
        ctx.op_issued(3)
        assert ctx.outstanding_to(2) == 2
        assert ctx.outstanding_to() == 3
        ctx.op_completed(2)
        assert ctx.outstanding_to(2) == 1

    def test_completion_underflow_rejected(self, ctx):
        with pytest.raises(LapiError, match="underflow"):
            ctx.op_completed(1)

    def test_op_completed_notifies(self, ctx):
        ctx.op_issued(1)
        ev = ctx.progress_ws.wait()
        ctx.op_completed(1)
        assert ev.triggered


class TestMplRequests:
    def test_send_request_ack_completion(self):
        from repro.mpl.requests import SendRequest
        req = SendRequest(1, 0, 100, "eager-direct")
        req.total_packets = 2
        assert not req.ack_one()
        assert req.ack_one()  # completes on the last ack
        assert req.complete

    def test_buffered_request_already_complete(self):
        from repro.mpl.requests import SendRequest
        req = SendRequest(1, 0, 100, "eager-buffered")
        req.total_packets = 2
        req.complete = True
        assert not req.ack_one()  # acks don't "re-complete"
        assert not req.ack_one()

    def test_next_seq_per_destination(self):
        from repro.mpl.requests import MplContext
        ctx = MplContext(Simulator(), 0, 4)
        assert ctx.next_seq(1) == 0
        assert ctx.next_seq(1) == 1
        assert ctx.next_seq(2) == 0  # independent stream
