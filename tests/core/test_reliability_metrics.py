"""Reliability metrics: retransmit injection path, duplicate-ack
counting, and registry/transport agreement under a lossy switch."""

from repro.core.reliability import ReliableTransport
from repro.machine import Cluster
from repro.machine.config import SP_1998
from repro.machine.packet import Packet
from repro.sim import Simulator

from .conftest import run_spmd


class _FakeAdapter:
    """Records which injection path each packet took."""

    def __init__(self, node_id=0, async_budget=10**9):
        self.node_id = node_id
        self.crashed = False
        self.data = []
        self.asynced = []
        self.control = []
        #: inject_async succeeds this many times, then reports a
        #: saturated TX FIFO.
        self.async_budget = async_budget

    def inject(self, thread, packet):
        self.data.append(packet)
        return
        yield  # pragma: no cover - make this a generator

    def inject_async(self, packet):
        if self.async_budget <= 0:
            return False
        self.async_budget -= 1
        self.asynced.append(packet)
        return True

    def inject_control(self, packet):
        self.control.append(packet)


def _data_packet(dst=1):
    return Packet(src=0, dst=dst, proto="lapi", kind="data",
                  header_bytes=32, payload=b"x" * 64)


def _ack_for(pkt):
    return Packet(src=pkt.dst, dst=pkt.src, proto="lapi", kind="ack",
                  header_bytes=16, info={"acked_seq": pkt.seq})


def _transport(adapter, **kw):
    sim = Simulator()
    kw.setdefault("window", 4)
    kw.setdefault("timeout", 100.0)
    return sim, ReliableTransport(sim, adapter, "lapi", **kw)


class TestRetransmitInjectionPath:
    def test_data_retransmit_uses_data_fifo_path(self):
        """A retransmitted data packet must re-enter through the
        credit-accounted data path, not the control slots."""
        adapter = _FakeAdapter()
        sim, tr = _transport(adapter)
        pkt = _data_packet()
        sim.process(tr.send_data(None, pkt))
        sim.run(until=150.0)  # past one timeout
        assert len(adapter.asynced) == 1  # retransmit, data path
        assert adapter.asynced[0] is pkt
        assert all(p.kind == "ack" or p is not pkt
                   for p in adapter.control)
        assert tr.retransmissions == 1
        tr.on_ack(_ack_for(pkt))
        sim.run()
        assert tr.outstanding_total() == 0

    def test_control_retransmit_keeps_reserved_slots(self):
        adapter = _FakeAdapter()
        sim, tr = _transport(adapter)
        pkt = Packet(src=0, dst=1, proto="lapi", kind="fence",
                     header_bytes=16)
        tr.send_control(pkt)
        sim.run(until=150.0)
        assert adapter.control.count(pkt) == 2  # original + retransmit
        assert adapter.asynced == []
        tr.on_ack(_ack_for(pkt))
        sim.run()

    def test_saturated_fifo_defers_without_charging_attempt(self):
        adapter = _FakeAdapter(async_budget=0)
        sim, tr = _transport(adapter)
        pkt = _data_packet()
        sim.process(tr.send_data(None, pkt))
        sim.run(until=200.0)
        assert tr.retransmissions == 0
        assert tr.retransmit_backoffs > 0
        # FIFO frees up: the deferred packet goes out on a later round.
        adapter.async_budget = 10**9
        sim.run(until=400.0)
        assert tr.retransmissions >= 1
        assert adapter.asynced[0] is pkt
        tr.on_ack(_ack_for(pkt))
        sim.run()

    def test_ack_before_timeout_means_no_retransmit(self):
        adapter = _FakeAdapter()
        sim, tr = _transport(adapter)
        pkt = _data_packet()
        sim.process(tr.send_data(None, pkt))
        sim.run(until=10.0)
        tr.on_ack(_ack_for(pkt))
        sim.run()
        assert tr.retransmissions == 0
        assert adapter.asynced == []


class TestDuplicateAcks:
    def test_unknown_peer_and_reacked_seq_are_counted(self):
        adapter = _FakeAdapter()
        sim, tr = _transport(adapter)
        pkt = _data_packet()
        sim.process(tr.send_data(None, pkt))
        sim.run(until=1.0)
        stray = Packet(src=9, dst=0, proto="lapi", kind="ack",
                       header_bytes=16, info={"acked_seq": 0})
        tr.on_ack(stray)  # no send state toward node 9
        assert tr.duplicate_acks == 1
        tr.on_ack(_ack_for(pkt))  # genuine
        tr.on_ack(_ack_for(pkt))  # retransmission overlap: duplicate
        assert tr.duplicate_acks == 2
        assert tr.metrics()["duplicate_acks"] == 2
        sim.run()

    def test_ack_rtt_histogram_observes_when_installed(self):
        from repro.obs import Histogram
        adapter = _FakeAdapter()
        sim, tr = _transport(adapter)
        tr.ack_rtt = Histogram("rtt", buckets=[1.0, 10.0, 100.0])
        pkt = _data_packet()
        sim.process(tr.send_data(None, pkt))
        sim.run(until=5.0)
        tr.on_ack(_ack_for(pkt))
        snap = tr.ack_rtt.snapshot_value()
        assert snap["count"] == 1
        assert 0.0 <= snap["max"] <= 5.0
        sim.run()


class TestRegistryAgreement:
    def test_lossy_run_metrics_match_transport_counters(self):
        """Registry numbers are the transport's numbers, and a lossy
        switch makes them nonzero."""
        cfg = SP_1998.replace(loss_rate=0.2)

        def main(task):
            lapi = task.lapi
            n = SP_1998.lapi_payload * 6
            buf = task.memory.malloc(n)
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(n)
                yield from lapi.put(1, n, buf, src)
                yield from lapi.fence()
            yield from lapi.gfence()
            return lapi.transport.retransmissions

        cluster = Cluster(nnodes=2, config=cfg, seed=3)
        per_rank = cluster.run_job(main, stacks=("lapi",))
        snap = cluster.metrics.snapshot()
        rel = snap["core.reliability"]
        for rank, retx in enumerate(per_rank):
            assert rel[str(rank)]["retransmissions"] == retx
        assert sum(per_rank) > 0
        # The dispatcher block is present for every rank too.
        for rank in range(2):
            assert snap["core.dispatcher"][str(rank)][
                "packets_processed"] > 0

    def test_clean_run_has_zero_recovery_metrics(self):
        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(64)
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(64)
                yield from lapi.put(1, 64, buf, src)
                yield from lapi.fence()
            yield from lapi.gfence()

        cluster = Cluster(nnodes=2, seed=1)
        cluster.run_job(main, stacks=("lapi",))
        rel = cluster.metrics.snapshot()["core.reliability"]
        for rank in ("0", "1"):
            assert rel[rank]["retransmissions"] == 0
            assert rel[rank]["duplicates_dropped"] == 0

    def test_run_spmd_helper_still_sees_transport_stats(self):
        # The conftest path used by older tests keeps working.
        def main(task):
            yield from task.lapi.gfence()
            return task.lapi.transport.acks_sent

        results = run_spmd(main)
        assert all(isinstance(r, int) for r in results)
