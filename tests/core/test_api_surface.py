"""Table 1 completeness: every LAPI function group exists and works."""

import pytest

from repro.core import Lapi, LapiCounter, QenvKey, RmwOp, SenvKey
from repro.machine.config import SP_1998

from .conftest import run_spmd


class TestTable1Surface:
    """One test per row of the paper's Table 1."""

    def test_setup_init_term(self):
        # Init/Term are exercised by every job; assert the guard rails.
        from repro.errors import LapiError

        def main(task):
            try:
                yield from task.lapi.init()  # second init (run_job did one)
            except LapiError:
                return "double-init rejected"

        assert run_spmd(main, nnodes=1)[0] == "double-init rejected"

    def test_active_message_amsend_exists(self):
        assert callable(Lapi.amsend)

    def test_data_transfer_put_get_exist(self):
        assert callable(Lapi.put)
        assert callable(Lapi.get)

    def test_mutual_exclusion_rmw_has_four_ops(self):
        assert {op.name for op in RmwOp} == {
            "SWAP", "COMPARE_AND_SWAP", "FETCH_AND_ADD", "FETCH_AND_OR"}

    def test_signaling_counter_functions(self):
        def main(task):
            lapi = task.lapi
            c = lapi.counter()
            lapi.setcntr(c, 5)
            v = yield from lapi.getcntr(c)
            yield from lapi.waitcntr(c, 3)
            v2 = yield from lapi.getcntr(c)
            return v, v2

        assert run_spmd(main, nnodes=1)[0] == (5, 2)

    def test_ordering_fence_gfence(self):
        def main(task):
            yield from task.lapi.fence()
            yield from task.lapi.gfence()
            return "ok"

        assert run_spmd(main, nnodes=2) == ["ok", "ok"]

    def test_address_exchange(self):
        def main(task):
            table = yield from task.lapi.address_init(task.rank * 10)
            return table

        assert run_spmd(main, nnodes=2)[0] == [0, 10]

    def test_environment_query_setup(self):
        def main(task):
            lapi = task.lapi
            out = {k: lapi.qenv(k) for k in QenvKey}
            lapi.senv(SenvKey.ERROR_CHK, 1)
            yield from lapi.gfence()
            return out

        out = run_spmd(main, nnodes=2)[0]
        assert out[QenvKey.TASK_ID] == 0
        assert out[QenvKey.NUM_TASKS] == 2
        assert out[QenvKey.MAX_UHDR_SZ] == SP_1998.lapi_uhdr_max
        assert out[QenvKey.MAX_AM_PAYLOAD] == SP_1998.am_uhdr_payload
        assert out[QenvKey.MAX_PKT_PAYLOAD] == SP_1998.lapi_payload
        assert out[QenvKey.INTERRUPT_SET] == 1
        assert out[QenvKey.SEND_WINDOW] == SP_1998.lapi_window


class TestGuards:
    def test_use_before_init_rejected(self):
        from repro.errors import LapiError
        from repro.machine import Cluster

        cluster = Cluster(nnodes=1)
        # Build a Lapi by hand and call without init.
        from repro.machine.cluster import Task
        task = Task(cluster, 0, 1, cluster.nodes[0])
        lapi = Lapi(task)

        def body(thread):
            task.thread = thread
            try:
                yield from lapi.fence()
            except LapiError as exc:
                return str(exc)

        t = cluster.nodes[0].cpu.spawn(body)
        msg = cluster.sim.run_until_complete(t.process)
        assert "before LAPI_Init" in msg

    def test_senv_toggles_interrupt_mode(self):
        def main(task):
            lapi = task.lapi
            before = lapi.qenv(QenvKey.INTERRUPT_SET)
            lapi.senv(SenvKey.INTERRUPT_SET, 0)
            mid = lapi.qenv(QenvKey.INTERRUPT_SET)
            lapi.senv(SenvKey.INTERRUPT_SET, 1)
            after = lapi.qenv(QenvKey.INTERRUPT_SET)
            yield from lapi.gfence()
            return before, mid, after

        assert run_spmd(main, nnodes=2)[0] == (1, 0, 1)

    def test_probe_drives_progress_in_polling(self):
        """A polling-mode task that only probes still receives data."""
        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(64)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(64)
                task.memory.write(src, b"P" * 64)
                yield from lapi.put(1, 64, buf, src, tgt_cntr=tgt.id)
                yield from lapi.fence()
                yield from lapi.gfence()
            else:
                while tgt.value < 1:
                    yield from lapi.probe()
                    yield from task.thread.sleep(5.0)
                data = task.memory.read(buf, 64)
                yield from lapi.gfence()
                return data

        assert run_spmd(main, interrupt_mode=False)[1] == b"P" * 64
