"""Integration tests: ordering semantics, LAPI_Fence, LAPI_Gfence."""

import pytest

from repro.machine.config import SP_1998

from .conftest import run_spmd


class TestFence:
    def test_fence_orders_overlapping_puts(self, progress_mode):
        """Section 2.5's example: two puts to overlapping buffers are
        unordered; a fence between them guarantees the second wins."""
        n = 2048

        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(n)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                a = task.memory.malloc(n)
                b = task.memory.malloc(n)
                task.memory.write(a, b"A" * n)
                task.memory.write(b, b"B" * n)
                yield from lapi.put(1, n, buf, a)
                yield from lapi.fence(1)  # first completes at target
                yield from lapi.put(1, n, buf, b, tgt_cntr=tgt.id)
                yield from lapi.fence(1)
                yield from lapi.gfence()
                return None
            yield from lapi.waitcntr(tgt, 1)
            yield from lapi.fence()
            data = task.memory.read(buf, n)
            yield from lapi.gfence()  # collectives must match rank 0's
            return data

        results = run_spmd(main, interrupt_mode=progress_mode)
        assert results[1] == b"B" * n

    def test_fence_waits_for_large_put_acks(self):
        def main(task):
            lapi = task.lapi
            n = SP_1998.lapi_retrans_copy_limit * 8
            buf = task.memory.malloc(n)
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(n)
                yield from lapi.put(1, n, buf, src)
                before = lapi.ctx.outstanding_to(1)
                yield from lapi.fence(1)
                after = lapi.ctx.outstanding_to(1)
                yield from lapi.gfence()
                return before, after
            yield from lapi.gfence()

        before, after = run_spmd(main)[0]
        assert before == 1
        assert after == 0

    def test_fence_with_no_outstanding_is_fast(self):
        def main(task):
            lapi = task.lapi
            yield from lapi.gfence()
            t0 = task.now()
            yield from lapi.fence()
            return task.now() - t0

        cost = run_spmd(main)[0]
        assert cost < 50.0  # just the call overhead, no waiting

    def test_fence_single_target(self):
        """fence(t) waits only for traffic to t, not to others."""
        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(64)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(64)
                yield from lapi.put(1, 64, buf, src)
                yield from lapi.put(2, 64, buf, src)
                yield from lapi.fence(1)
                # Traffic to 2 may still be outstanding; to 1 may not.
                out1 = lapi.ctx.outstanding_to(1)
                yield from lapi.fence()
                yield from lapi.gfence()
                return out1
            yield from lapi.gfence()

        assert run_spmd(main, nnodes=3)[0] == 0


class TestGfence:
    def test_gfence_synchronizes(self, progress_mode):
        """No rank exits a gfence before every rank has entered it."""
        def main(task):
            lapi = task.lapi
            # Stagger arrival: rank r works r*500us first.
            yield from task.thread.sleep(task.rank * 500.0)
            entered = task.now()
            yield from lapi.gfence()
            exited = task.now()
            return entered, exited

        results = run_spmd(main, nnodes=4, interrupt_mode=progress_mode)
        last_entry = max(e for e, _ in results)
        assert all(x >= last_entry for _, x in results)

    def test_gfence_multiple_epochs(self):
        def main(task):
            lapi = task.lapi
            times = []
            for _ in range(4):
                yield from lapi.gfence()
                times.append(task.now())
            return times

        results = run_spmd(main, nnodes=4)
        for epoch in range(4):
            # Each epoch must complete before anyone starts the next.
            exits = [r[epoch] for r in results]
            if epoch + 1 < 4:
                next_exits = [r[epoch + 1] for r in results]
                assert max(exits) <= min(next_exits)

    def test_gfence_flushes_puts_globally(self):
        """After a gfence, every rank sees every pre-fence put."""
        def main(task):
            lapi = task.lapi
            n_ranks = task.size
            slots = task.memory.malloc(8 * n_ranks)
            yield from lapi.gfence()
            src = task.memory.malloc(8)
            task.memory.write_i64(src, task.rank + 1)
            for peer in range(n_ranks):
                if peer != task.rank:
                    yield from lapi.put(peer, 8, slots + 8 * task.rank,
                                        src)
                else:
                    task.memory.write_i64(slots + 8 * task.rank,
                                          task.rank + 1)
            yield from lapi.gfence()
            return [task.memory.read_i64(slots + 8 * r)
                    for r in range(n_ranks)]

        results = run_spmd(main, nnodes=4)
        for r in results:
            assert r == [1, 2, 3, 4]

    def test_gfence_on_single_task(self):
        def main(task):
            yield from task.lapi.gfence()
            return "ok"

        assert run_spmd(main, nnodes=1)[0] == "ok"

    def test_gfence_odd_task_count(self):
        """Dissemination barrier must handle non-power-of-two sizes."""
        def main(task):
            lapi = task.lapi
            yield from task.thread.sleep(task.rank * 100.0)
            yield from lapi.gfence()
            return task.now()

        results = run_spmd(main, nnodes=3)
        assert max(results) - min(results) < 100.0


class TestAddressInit:
    def test_address_exchange(self):
        def main(task):
            lapi = task.lapi
            my_buf = task.memory.malloc(64 * (task.rank + 1))
            addrs = yield from lapi.address_init(my_buf)
            return addrs

        results = run_spmd(main, nnodes=3)
        # Every rank sees the same table.
        assert results[0] == results[1] == results[2]
        assert len(results[0]) == 3

    def test_multiple_exchanges(self):
        def main(task):
            lapi = task.lapi
            t1 = yield from lapi.address_init(("a", task.rank))
            t2 = yield from lapi.address_init(("b", task.rank))
            return t1, t2

        results = run_spmd(main, nnodes=2)
        t1, t2 = results[0]
        assert t1 == [("a", 0), ("a", 1)]
        assert t2 == [("b", 0), ("b", 1)]
