"""Integration tests: LAPI_Amsend and the two-part handler model."""

import pytest

from repro.errors import LapiError
from repro.machine.config import SP_1998

from .conftest import run_spmd


class TestActiveMessages:
    def test_header_and_completion_flow(self, progress_mode):
        """The Figure 1 flow: header handler names the buffer, data
        lands, completion handler runs, counters fire at both ends."""
        payload = b"active message payload" * 4
        log = []

        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(1024)

            def hh(t, src, uhdr, udata_len):
                log.append(("hh", t.rank, src, bytes(uhdr), udata_len))
                def ch(t2, info):
                    log.append(("ch", t2.rank, info))
                return buf, ch, "my-info"

            hid = lapi.register_handler(hh)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                cmpl = lapi.counter()
                org = lapi.counter()
                yield from lapi.amsend(1, hid, b"HDR", payload,
                                       len(payload), tgt_cntr=tgt.id,
                                       org_cntr=org, cmpl_cntr=cmpl)
                yield from lapi.waitcntr(cmpl, 1)
                yield from lapi.gfence()
                return "origin done"
            else:
                yield from lapi.waitcntr(tgt, 1)
                data = task.memory.read(buf, len(payload))
                yield from lapi.gfence()
                return data

        results = run_spmd(main, interrupt_mode=progress_mode)
        assert results[1] == payload
        assert ("hh", 1, 0, b"HDR", len(payload)) in log
        assert ("ch", 1, "my-info") in log

    def test_multi_packet_am_reassembles(self, progress_mode):
        n = SP_1998.lapi_payload * 3 + 200
        payload = bytes(i % 251 for i in range(n))

        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(n)

            def hh(t, src, uhdr, udata_len):
                return buf, None, None

            hid = lapi.register_handler(hh)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                yield from lapi.amsend(1, hid, b"", payload, n,
                                       tgt_cntr=tgt.id)
                yield from lapi.fence()
            else:
                yield from lapi.waitcntr(tgt, 1)
                return task.memory.read(buf, n)

        assert run_spmd(main, interrupt_mode=progress_mode)[1] == payload

    def test_am_with_memory_source(self):
        """udata may be a local memory address (the faithful API)."""
        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(64)

            def hh(t, src, uhdr, udata_len):
                return buf, None, None

            hid = lapi.register_handler(hh)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                src_addr = task.memory.malloc(64)
                task.memory.write(src_addr, b"Z" * 64)
                yield from lapi.amsend(1, hid, b"", src_addr, 64,
                                       tgt_cntr=tgt.id)
                yield from lapi.fence()
            else:
                yield from lapi.waitcntr(tgt, 1)
                return task.memory.read(buf, 64)

        assert run_spmd(main)[1] == b"Z" * 64

    def test_dataless_am_signals(self, progress_mode):
        seen = []

        def main(task):
            lapi = task.lapi

            def hh(t, src, uhdr, udata_len):
                seen.append((src, bytes(uhdr), udata_len))
                return None, None, None

            hid = lapi.register_handler(hh)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                yield from lapi.amsend(1, hid, b"ping", None, 0,
                                       tgt_cntr=tgt.id)
                yield from lapi.fence()
            else:
                yield from lapi.waitcntr(tgt, 1)
            yield from lapi.gfence()

        run_spmd(main, interrupt_mode=progress_mode)
        assert seen == [(0, b"ping", 0)]

    def test_null_buffer_for_data_is_error(self):
        """Section 5.3.1: the header handler cannot return NULL when the
        message carries data."""
        def main(task):
            lapi = task.lapi

            def hh(t, src, uhdr, udata_len):
                return None, None, None  # illegal: message has data

            hid = lapi.register_handler(hh)
            yield from lapi.gfence()
            if task.rank == 0:
                yield from lapi.amsend(1, hid, b"", b"data", 4)
                yield from lapi.fence()
            yield from lapi.gfence()

        with pytest.raises(LapiError, match="no buffer"):
            run_spmd(main)

    def test_bad_handler_id_is_error(self):
        def main(task):
            lapi = task.lapi
            yield from lapi.gfence()
            if task.rank == 0:
                yield from lapi.amsend(1, 42, b"", None, 0)
                yield from lapi.fence()
            yield from lapi.gfence()

        with pytest.raises(LapiError, match="handler"):
            run_spmd(main)

    def test_completion_handler_can_communicate(self):
        """Completion handlers run on their own thread and may issue
        LAPI calls (GA's get protocol depends on this)."""
        def main(task):
            lapi = task.lapi
            inbox = task.memory.malloc(32)
            reply_buf = task.memory.malloc(32)
            done = lapi.counter()

            def hh(t, src, uhdr, udata_len):
                def ch(t2, info):
                    # Reply by putting back into rank 0's reply_buf.
                    yield from t2.lapi.put(info, 32, reply_buf, inbox,
                                           tgt_cntr=done.id)
                return inbox, ch, src

            lapi.register_handler(hh)
            yield from lapi.gfence()
            if task.rank == 0:
                yield from lapi.amsend(1, 0, b"", b"x" * 32, 32)
                yield from lapi.waitcntr(done, 1)
                data = task.memory.read(reply_buf, 32)
                yield from lapi.gfence()
                return data
            yield from lapi.gfence()

        assert run_spmd(main)[0] == b"x" * 32

    def test_concurrent_streams_interleave(self, progress_mode):
        """Multiple independent AM streams may be in flight at once;
        each reassembles correctly despite interleaving."""
        n = SP_1998.lapi_payload * 2 + 31
        streams = 5

        def main(task):
            lapi = task.lapi
            bufs = [task.memory.malloc(n) for _ in range(streams)]

            def hh(t, src, uhdr, udata_len):
                idx = uhdr[0]
                return bufs[idx], None, None

            hid = lapi.register_handler(hh)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                for i in range(streams):
                    data = bytes([i + 1]) * n
                    yield from lapi.amsend(1, hid, bytes([i]), data, n,
                                           tgt_cntr=tgt.id)
                yield from lapi.fence()
            else:
                yield from lapi.waitcntr(tgt, streams)
                return [task.memory.read(b, n) for b in bufs]

        results = run_spmd(main, interrupt_mode=progress_mode)
        for i, blob in enumerate(results[1]):
            assert blob == bytes([i + 1]) * n

    def test_uhdr_size_limit_enforced(self):
        def main(task):
            lapi = task.lapi
            hid = lapi.register_handler(lambda *a: (None, None, None))
            yield from lapi.gfence()
            if task.rank == 0:
                big = b"u" * (SP_1998.lapi_uhdr_max + 1)
                try:
                    yield from lapi.amsend(1, hid, big, None, 0)
                except LapiError:
                    yield from lapi.gfence()
                    return "rejected"
            yield from lapi.gfence()

        assert run_spmd(main)[0] == "rejected"

    def test_am_to_self(self):
        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(16)
            ran = []

            def hh(t, src, uhdr, udata_len):
                def ch(t2, info):
                    ran.append(info)
                return buf, ch, "local"

            hid = lapi.register_handler(hh)
            tgt = lapi.counter()
            yield from lapi.amsend(task.rank, hid, b"", b"A" * 16, 16,
                                   tgt_cntr=tgt.id)
            yield from lapi.waitcntr(tgt, 1)
            return task.memory.read(buf, 16), ran

        data, ran = run_spmd(main, nnodes=1)[0]
        assert data == b"A" * 16
        assert ran == ["local"]
