"""Reliability layer: loss recovery, duplicate filtering, reordering."""

import pytest

from repro.machine.config import SP_1998

from .conftest import run_spmd


class TestDuplicateFilter:
    def test_rx_dedup_watermark(self):
        from repro.core.reliability import _PeerRx
        rx = _PeerRx()
        assert rx.fresh(0)
        assert rx.fresh(1)
        assert not rx.fresh(0)
        assert not rx.fresh(1)
        assert rx.cum == 2
        assert rx.seen == set()

    def test_rx_dedup_out_of_order(self):
        from repro.core.reliability import _PeerRx
        rx = _PeerRx()
        assert rx.fresh(3)
        assert rx.fresh(1)
        assert rx.fresh(0)
        assert not rx.fresh(3)
        assert rx.fresh(2)
        assert rx.cum == 4
        assert rx.seen == set()

    def test_sparse_set_bounded_by_watermark(self):
        from repro.core.reliability import _PeerRx
        rx = _PeerRx()
        for seq in range(0, 100, 2):  # evens first
            assert rx.fresh(seq)
        for seq in range(1, 100, 2):  # odds fill the gaps
            assert rx.fresh(seq)
        assert rx.cum == 100
        assert rx.seen == set()


class TestLossRecovery:
    @pytest.mark.parametrize("loss", [0.05, 0.2])
    def test_put_survives_packet_loss(self, loss):
        """Data delivered intact despite fabric loss (retransmission)."""
        cfg = SP_1998.replace(loss_rate=loss)
        n = SP_1998.lapi_payload * 6 + 99
        payload = bytes(i % 241 for i in range(n))

        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(n)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(n)
                task.memory.write(src, payload)
                yield from lapi.put(1, n, buf, src, tgt_cntr=tgt.id)
                yield from lapi.fence()
                yield from lapi.gfence()
                return lapi.transport.retransmissions
            else:
                yield from lapi.waitcntr(tgt, 1)
                yield from lapi.gfence()
                return task.memory.read(buf, n)

        results = run_spmd(main, config=cfg, seed=7)
        assert results[1] == payload

    def test_retransmissions_actually_happen(self):
        cfg = SP_1998.replace(loss_rate=0.3)

        def main(task):
            lapi = task.lapi
            n = SP_1998.lapi_payload * 8
            buf = task.memory.malloc(n)
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(n)
                yield from lapi.put(1, n, buf, src)
                yield from lapi.fence()
                yield from lapi.gfence()
                return lapi.transport.retransmissions
            yield from lapi.gfence()
            return lapi.transport.duplicates_dropped

        results = run_spmd(main, config=cfg, seed=3)
        assert results[0] > 0  # sender retransmitted

    def test_rmw_survives_loss_without_double_apply(self):
        """A lost RMW reply must not cause the op to apply twice."""
        cfg = SP_1998.replace(loss_rate=0.25)

        def main(task):
            lapi = task.lapi
            from repro.core import RmwOp
            addr = task.memory.malloc(8)
            task.memory.write_i64(addr, 0)
            yield from lapi.gfence()
            if task.rank == 0:
                for _ in range(10):
                    yield from lapi.rmw_sync(RmwOp.FETCH_AND_ADD, 1,
                                             addr, 1)
            yield from lapi.gfence()
            if task.rank == 1:
                return task.memory.read_i64(addr)

        results = run_spmd(main, config=cfg, seed=11)
        assert results[1] == 10

    def test_gfence_survives_loss(self):
        cfg = SP_1998.replace(loss_rate=0.2)

        def main(task):
            lapi = task.lapi
            for _ in range(3):
                yield from lapi.gfence()
            return "ok"

        assert run_spmd(main, nnodes=4, config=cfg,
                        seed=5) == ["ok"] * 4


class TestOutOfOrder:
    def test_cross_group_multi_packet_put_reassembles(self):
        """Nodes in different switch groups: packets take disjoint
        middle-stage routes and arrive out of order; the self-describing
        headers must still reassemble the message exactly."""
        cfg = SP_1998.replace(switch_group_size=1, route_jitter=3.0)
        n = SP_1998.lapi_payload * 10
        payload = bytes(i % 239 for i in range(n))

        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(n)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(n)
                task.memory.write(src, payload)
                yield from lapi.put(1, n, buf, src, tgt_cntr=tgt.id)
                yield from lapi.fence()
            else:
                yield from lapi.waitcntr(tgt, 1)
                return task.memory.read(buf, n)

        assert run_spmd(main, config=cfg, seed=13)[1] == payload

    def test_am_data_outracing_header_is_stashed(self):
        """With heavy jitter a later AM packet can beat the first one;
        LAPI must stash it and flush after the header handler runs."""
        cfg = SP_1998.replace(switch_group_size=1, route_jitter=25.0)
        n = SP_1998.lapi_payload * 6

        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(n)

            def hh(t, src, uhdr, udata_len):
                return buf, None, None

            hid = lapi.register_handler(hh)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                data = bytes(i % 233 for i in range(n))
                yield from lapi.amsend(1, hid, b"h", data, n,
                                       tgt_cntr=tgt.id)
                yield from lapi.fence()
                yield from lapi.gfence()
                return data
            else:
                yield from lapi.waitcntr(tgt, 1)
                yield from lapi.gfence()
                return task.memory.read(buf, n)

        # Try several seeds; at least one must exercise the stash path
        # while all must deliver correct data.
        stashed_somewhere = False
        for seed in range(6):
            results = run_spmd(main, config=cfg, seed=seed)
            assert results[1] == results[0]
        # Correctness under all seeds is the hard requirement; the
        # stash path itself is asserted via unit-level dispatcher tests.


class TestBackpressure:
    def test_send_window_limits_inflight(self):
        """A burst of puts cannot have more unacked packets in flight
        than the window allows."""
        cfg = SP_1998.replace(lapi_window=4)

        def main(task):
            lapi = task.lapi
            n = SP_1998.lapi_payload
            bufs = task.memory.malloc(n * 32)
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(n)
                peak = 0
                for i in range(32):
                    yield from lapi.put(1, n, bufs + n * i, src)
                    peak = max(peak, lapi.transport.outstanding_to(1))
                yield from lapi.fence()
                yield from lapi.gfence()
                return peak
            yield from lapi.gfence()

        peak = run_spmd(main, config=cfg)[0]
        assert peak <= 4
