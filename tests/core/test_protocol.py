"""Unit + property tests for LAPI packetization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.constants import PacketKind
from repro.core.protocol import (am_packets, control_packet,
                                 get_reply_packets, put_packets)
from repro.errors import LapiError
from repro.machine.config import SP_1998


class TestPutPackets:
    def test_empty_put_sends_one_packet(self):
        pkts = put_packets(SP_1998, 0, 1, 7, b"", 100, None, None)
        assert len(pkts) == 1
        assert pkts[0].payload == b""
        assert pkts[0].info["total"] == 0

    def test_single_packet_put(self):
        pkts = put_packets(SP_1998, 0, 1, 7, b"x" * 100, 100, 3, 4)
        assert len(pkts) == 1
        p = pkts[0]
        assert p.info["tgt_addr"] == 100
        assert p.info["tgt_cntr_id"] == 3
        assert p.info["cmpl_cntr_id"] == 4
        assert p.header_bytes == SP_1998.lapi_header

    def test_multi_packet_split(self):
        n = SP_1998.lapi_payload * 3 + 10
        pkts = put_packets(SP_1998, 0, 1, 7, b"a" * n, 0, None, None)
        assert len(pkts) == 4
        assert sum(len(p.payload) for p in pkts) == n
        offsets = [p.info["offset"] for p in pkts]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0

    def test_every_packet_self_describing(self):
        # One-sided semantics: any packet alone carries enough to place
        # its bytes (this is what the 48-byte header pays for).
        n = SP_1998.lapi_payload * 2 + 5
        for p in put_packets(SP_1998, 0, 1, 9, b"b" * n, 555, 1, None):
            assert p.info["tgt_addr"] == 555
            assert p.info["total"] == n
            assert "offset" in p.info

    def test_all_packets_fit_wire(self):
        n = SP_1998.lapi_payload * 2 + 5
        for p in put_packets(SP_1998, 0, 1, 9, b"c" * n, 0, None, None):
            p.validate(SP_1998.packet_size)

    @given(st.integers(min_value=0, max_value=5 * SP_1998.lapi_payload))
    def test_reassembly_roundtrip(self, n):
        data = bytes(i % 251 for i in range(n))
        pkts = put_packets(SP_1998, 0, 1, 1, data, 0, None, None)
        buf = bytearray(n)
        for p in pkts:
            off = p.info["offset"]
            buf[off:off + len(p.payload)] = p.payload
        assert bytes(buf) == data


class TestAmPackets:
    def test_uhdr_rides_first_packet(self):
        pkts = am_packets(SP_1998, 0, 1, 3, 0, b"H" * 40, b"d" * 10,
                          None, None)
        assert len(pkts) == 1
        p = pkts[0]
        assert p.info["is_first"]
        assert p.info["uhdr"] == b"H" * 40
        assert p.header_bytes == SP_1998.lapi_header + 40

    def test_uhdr_too_large_rejected(self):
        big = b"x" * (SP_1998.lapi_uhdr_max + 1)
        with pytest.raises(LapiError, match="uhdr"):
            am_packets(SP_1998, 0, 1, 3, 0, big, b"", None, None)

    def test_first_packet_room_shrinks_with_uhdr(self):
        uhdr = b"u" * 100
        data = b"d" * SP_1998.packet_size  # forces a split
        pkts = am_packets(SP_1998, 0, 1, 3, 0, uhdr, data, None, None)
        first_room = SP_1998.packet_size - SP_1998.lapi_header - 100
        assert len(pkts[0].payload) == first_room
        assert not pkts[1].info["is_first"]
        assert "uhdr" not in pkts[1].info

    def test_dataless_am_single_packet(self):
        pkts = am_packets(SP_1998, 0, 1, 3, 2, b"req", b"", None, None)
        assert len(pkts) == 1
        assert pkts[0].payload == b""
        assert pkts[0].info["handler_id"] == 2

    def test_am_payload_900ish_fits_one_packet(self):
        # Section 5.3.1: GA sends ~900-byte chunks in single AMs.
        data = b"z" * SP_1998.am_uhdr_payload
        uhdr = b"u" * SP_1998.lapi_uhdr_max
        pkts = am_packets(SP_1998, 0, 1, 3, 0, uhdr, data, None, None)
        assert len(pkts) == 1
        pkts[0].validate(SP_1998.packet_size)

    @given(st.integers(min_value=0, max_value=3 * SP_1998.lapi_payload),
           st.integers(min_value=0, max_value=SP_1998.lapi_uhdr_max))
    def test_am_reassembly_roundtrip(self, n, uh):
        data = bytes(i % 249 for i in range(n))
        pkts = am_packets(SP_1998, 0, 1, 1, 0, b"h" * uh, data,
                          None, None)
        buf = bytearray(n)
        for p in pkts:
            p.validate(SP_1998.packet_size)
            off = p.info["offset"]
            buf[off:off + len(p.payload)] = p.payload
        assert bytes(buf) == data


class TestGetReplyAndControl:
    def test_get_reply_roundtrip(self):
        n = SP_1998.lapi_payload + 17
        data = bytes(range(256)) * (n // 256 + 1)
        data = data[:n]
        pkts = get_reply_packets(SP_1998, 1, 0, 5, data)
        assert len(pkts) == 2
        assert all(p.info["mtype"] == PacketKind.MSG_GET_REP for p in pkts)

    def test_control_packet_kinds(self):
        p = control_packet(SP_1998, 0, 1, PacketKind.CMPL, cntr_id=4)
        assert p.kind == PacketKind.CMPL
        assert p.info["cntr_id"] == 4
        assert p.payload == b""

    def test_control_rejects_data_kind(self):
        with pytest.raises(LapiError):
            control_packet(SP_1998, 0, 1, PacketKind.DATA)
