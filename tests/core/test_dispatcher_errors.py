"""Error-path tests: malformed handlers and packets fail loudly."""

import pytest

from repro.errors import LapiError
from repro.machine import Cluster, Packet


class TestHeaderHandlerContract:
    def test_non_tuple_reply_rejected(self):
        from repro.core.dispatcher import Dispatcher
        with pytest.raises(LapiError, match="must return"):
            Dispatcher._check_hh_reply("not a tuple", 10)

    def test_wrong_arity_rejected(self):
        from repro.core.dispatcher import Dispatcher
        with pytest.raises(LapiError, match="must return"):
            Dispatcher._check_hh_reply((1, 2), 10)

    def test_null_buffer_with_data_rejected(self):
        from repro.core.dispatcher import Dispatcher
        with pytest.raises(LapiError, match="no buffer"):
            Dispatcher._check_hh_reply((None, None, None), 10)

    def test_null_buffer_without_data_ok(self):
        from repro.core.dispatcher import Dispatcher
        buf, fn, info = Dispatcher._check_hh_reply((None, None, "i"), 0)
        assert (buf, fn, info) == (None, None, "i")


class TestMalformedPackets:
    def _run_with_injected(self, kind, info, mtype=None):
        """Inject one crafted packet at rank 1 and run a LAPI job."""
        def main(task):
            lapi = task.lapi
            yield from lapi.gfence()
            if task.rank == 0:
                pkt = Packet(src=0, dst=1, proto="lapi", kind=kind,
                             header_bytes=48,
                             info=dict(info, **({"mtype": mtype}
                                                if mtype else {})))
                # Bypass the API: hand the raw packet to the transport.
                lapi.transport.send_control(pkt)
                yield from task.thread.sleep(200.0)
            yield from lapi.gfence()

        Cluster(nnodes=2).run_job(main, stacks=("lapi",))

    def test_unknown_kind_raises(self):
        with pytest.raises(LapiError, match="unknown packet kind"):
            self._run_with_injected("bogus", {})

    def test_unknown_mtype_raises(self):
        with pytest.raises(LapiError, match="unknown data mtype"):
            self._run_with_injected("data", {"msg_id": 1, "total": 0},
                                    mtype="mystery")

    def test_get_reply_for_unknown_message_raises(self):
        with pytest.raises(LapiError, match="unknown msg"):
            self._run_with_injected(
                "data", {"msg_id": 12345, "offset": 0, "total": 4},
                mtype="get_rep")

    def test_rmw_reply_for_unknown_request_raises(self):
        with pytest.raises(LapiError, match="unknown request"):
            self._run_with_injected("rmw_rep",
                                    {"req_id": 999, "prev_value": 0})


class TestCompletionHandlerFailure:
    def test_exception_in_completion_handler_surfaces(self):
        """A crashing completion handler kills the job with its error
        (not a silent hang)."""
        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(16)

            def hh(t, src, uhdr, udata_len):
                def ch(t2, info):
                    raise RuntimeError("handler exploded")
                return buf, ch, None

            hid = lapi.register_handler(hh)
            yield from lapi.gfence()
            if task.rank == 0:
                yield from lapi.amsend(1, hid, b"", b"x" * 8, 8)
                yield from lapi.fence()
            yield from lapi.gfence()

        with pytest.raises(RuntimeError, match="handler exploded"):
            Cluster(nnodes=2).run_job(main, stacks=("lapi",))

    def test_exception_in_header_handler_surfaces(self):
        def main(task):
            lapi = task.lapi

            def hh(t, src, uhdr, udata_len):
                raise ValueError("header handler bug")

            hid = lapi.register_handler(hh)
            yield from lapi.gfence()
            if task.rank == 0:
                yield from lapi.amsend(1, hid, b"", None, 0)
                yield from lapi.fence()
            yield from lapi.gfence()

        with pytest.raises(ValueError, match="header handler bug"):
            Cluster(nnodes=2).run_job(main, stacks=("lapi",))
