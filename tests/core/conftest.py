"""Shared fixtures and helpers for LAPI core tests."""

import pytest

from repro.machine import Cluster
from repro.machine.config import SP_1998


def run_spmd(fn, nnodes=2, *, config=SP_1998, interrupt_mode=True,
             seed=1, **kw):
    """Run ``fn`` as an SPMD job on a fresh cluster; returns rank results."""
    cluster = Cluster(nnodes=nnodes, config=config, seed=seed)
    return cluster.run_job(fn, stacks=("lapi",),
                           interrupt_mode=interrupt_mode, **kw)


@pytest.fixture(params=[True, False], ids=["interrupt", "polling"])
def progress_mode(request):
    """Run the decorated test in both LAPI progress modes."""
    return request.param
