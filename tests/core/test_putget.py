"""Integration tests: LAPI_Put / LAPI_Get through the full machine."""

import numpy as np
import pytest

from repro.machine.config import SP_1998

from .conftest import run_spmd


class TestPut:
    def test_put_delivers_bytes(self, progress_mode):
        payload = bytes(range(200))

        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(256)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(256)
                task.memory.write(src, payload)
                yield from lapi.put(1, len(payload), buf, src,
                                    tgt_cntr=tgt.id)
                yield from lapi.fence(1)
            else:
                yield from lapi.waitcntr(tgt, 1)
                return task.memory.read(buf, len(payload))

        results = run_spmd(main, interrupt_mode=progress_mode)
        assert results[1] == payload

    def test_multi_packet_put(self, progress_mode):
        n = SP_1998.lapi_payload * 4 + 123
        payload = bytes(i % 255 for i in range(n))

        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(n)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(n)
                task.memory.write(src, payload)
                yield from lapi.put(1, n, buf, src, tgt_cntr=tgt.id)
                yield from lapi.fence()
            else:
                yield from lapi.waitcntr(tgt, 1)
                return task.memory.read(buf, n)

        results = run_spmd(main, interrupt_mode=progress_mode)
        assert results[1] == payload

    def test_org_cntr_small_fires_before_ack(self):
        """Small puts copy into internal buffers: the origin counter is
        available immediately (section 5.3.1)."""

        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(64)
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(64)
                org = lapi.counter()
                t0 = task.now()
                yield from lapi.put(1, 64, buf, src, org_cntr=org)
                value_at_return = org.value
                yield from lapi.fence()
                return value_at_return
            yield from lapi.fence()

        results = run_spmd(main)
        assert results[0] == 1

    def test_org_cntr_large_fires_after_acks(self):
        """Puts above the internal-copy limit hold the user buffer until
        acknowledgement; the origin counter must not fire at return."""
        n = SP_1998.lapi_retrans_copy_limit * 4

        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(n)
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(n)
                org = lapi.counter()
                yield from lapi.put(1, n, buf, src, org_cntr=org)
                at_return = org.value
                yield from lapi.waitcntr(org, 1)
                return (at_return, org.total)
            yield from lapi.fence()

        results = run_spmd(main)
        at_return, total = results[0]
        assert at_return == 0
        assert total == 1

    def test_cmpl_cntr_round_trip(self, progress_mode):
        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(32)
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(32)
                cmpl = lapi.counter()
                yield from lapi.put(1, 32, buf, src, cmpl_cntr=cmpl)
                yield from lapi.waitcntr(cmpl, 1)
                return "completed"
            yield from lapi.fence()

        assert run_spmd(main, interrupt_mode=progress_mode)[0] == "completed"

    def test_put_to_self_fast_path(self):
        def main(task):
            lapi = task.lapi
            a = task.memory.malloc(16)
            b = task.memory.malloc(16)
            task.memory.write(a, b"self put test 16")
            tgt = lapi.counter()
            org = lapi.counter()
            yield from lapi.put(task.rank, 16, b, a, tgt_cntr=tgt.id,
                                org_cntr=org)
            yield from lapi.waitcntr(tgt, 1)
            yield from lapi.waitcntr(org, 1)
            return (task.memory.read(b, 16), lapi.stats.local_fastpaths)

        results = run_spmd(main, nnodes=1)
        data, fast = results[0]
        assert data == b"self put test 16"
        assert fast == 1

    def test_zero_length_put_fires_counters(self):
        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(8)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(8)
                yield from lapi.put(1, 0, buf, src, tgt_cntr=tgt.id)
                yield from lapi.fence()
            else:
                yield from lapi.waitcntr(tgt, 1)
                return "signalled"

        assert run_spmd(main)[1] == "signalled"

    def test_put_invalid_target_raises(self):
        from repro.errors import LapiError

        def main(task):
            lapi = task.lapi
            src = task.memory.malloc(8)
            try:
                yield from lapi.put(99, 8, 0, src)
            except LapiError:
                return "rejected"

        assert run_spmd(main, nnodes=1)[0] == "rejected"

    def test_many_concurrent_puts_one_counter(self, progress_mode):
        """Section 2.3: one counter groups many messages."""
        count = 12

        def main(task):
            lapi = task.lapi
            bufs = [task.memory.malloc(64) for _ in range(count)]
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(64)
                task.memory.write(src, bytes(range(64)))
                for b in bufs:
                    yield from lapi.put(1, 64, b, src, tgt_cntr=tgt.id)
                yield from lapi.fence()
            else:
                yield from lapi.waitcntr(tgt, count)
                return [task.memory.read(b, 64) for b in bufs]

        results = run_spmd(main, interrupt_mode=progress_mode)
        assert all(r == bytes(range(64)) for r in results[1])


class TestGet:
    def test_get_pulls_bytes(self, progress_mode):
        payload = b"remote data!" * 8

        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(len(payload))
            if task.rank == 1:
                task.memory.write(buf, payload)
            yield from lapi.gfence()
            if task.rank == 0:
                dst = task.memory.malloc(len(payload))
                yield from lapi.get_sync(1, len(payload), buf, dst)
                return task.memory.read(dst, len(payload))
            # Rank 1 does nothing further: the get is fully one-sided
            # (LAPI_Term's collective quiesce pairs the shutdown).

        results = run_spmd(main, interrupt_mode=progress_mode)
        assert results[0] == payload

    def test_large_get_multi_packet(self):
        n = SP_1998.lapi_payload * 5 + 77
        payload = bytes(i % 253 for i in range(n))

        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(n)
            if task.rank == 1:
                task.memory.write(buf, payload)
            yield from lapi.gfence()
            if task.rank == 0:
                dst = task.memory.malloc(n)
                yield from lapi.get_sync(1, n, buf, dst)
                return task.memory.read(dst, n)
            # One-sided: rank 1 takes no further part (term pairs up).

        assert run_spmd(main)[0] == payload

    def test_get_tgt_cntr_fires_at_target(self):
        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(64)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                dst = task.memory.malloc(64)
                yield from lapi.get_sync(1, 64, buf, dst)
                yield from lapi.gfence()
            else:
                # Target learns its data was read out.
                yield from lapi.waitcntr(tgt, 1)
                yield from lapi.gfence()
                return "target notified"

        def main_with_cntr(task):
            lapi = task.lapi
            buf = task.memory.malloc(64)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                dst = task.memory.malloc(64)
                org = lapi.counter()
                yield from lapi.get(1, 64, buf, dst, tgt_cntr=tgt.id,
                                    org_cntr=org)
                yield from lapi.waitcntr(org, 1)
                yield from lapi.gfence()
            else:
                yield from lapi.waitcntr(tgt, 1)
                yield from lapi.gfence()
                return "target notified"

        assert run_spmd(main_with_cntr)[1] == "target notified"

    def test_get_from_self(self):
        def main(task):
            lapi = task.lapi
            a = task.memory.malloc(8)
            b = task.memory.malloc(8)
            task.memory.write(a, b"selfget!")
            yield from lapi.get_sync(task.rank, 8, a, b)
            return task.memory.read(b, 8)

        assert run_spmd(main, nnodes=1)[0] == b"selfget!"

    def test_bidirectional_simultaneous(self, progress_mode):
        """Both ranks get from each other at once (no deadlock)."""
        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(128)
            task.memory.write(buf, bytes([task.rank + 65]) * 128)
            yield from lapi.gfence()
            peer = 1 - task.rank
            dst = task.memory.malloc(128)
            yield from lapi.get_sync(peer, 128, buf, dst)
            return task.memory.read(dst, 128)

        results = run_spmd(main, interrupt_mode=progress_mode)
        assert results[0] == b"B" * 128
        assert results[1] == b"A" * 128


class TestPipelining:
    def test_nonblocking_put_returns_before_delivery(self):
        """The pipeline-latency property of section 4: control returns
        long before the one-way latency has elapsed."""

        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(4096)
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(4096)
                t0 = task.now()
                yield from lapi.put(1, 4096, buf, src)
                issue_time = task.now() - t0
                cmpl = lapi.counter()
                t0 = task.now()
                yield from lapi.put(1, 4096, buf, src, cmpl_cntr=cmpl)
                yield from lapi.waitcntr(cmpl, 1)
                full_time = task.now() - t0
                yield from lapi.fence()
                return issue_time, full_time
            yield from lapi.fence()

        issue, full = run_spmd(main)[0]
        assert issue < full / 2, (issue, full)

    def test_unordered_pipelining_overlaps(self):
        """Issuing N puts back to back costs far less than N times the
        synchronous put latency (the paper's latency hiding)."""
        reps = 8

        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(64 * reps)
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(64)
                cmpl = lapi.counter()
                t0 = task.now()
                yield from lapi.put_sync(1, 64, buf, src)
                sync_one = task.now() - t0
                t0 = task.now()
                for i in range(reps):
                    yield from lapi.put(1, 64, buf + 64 * i, src,
                                        cmpl_cntr=cmpl)
                yield from lapi.waitcntr(cmpl, reps)
                pipelined = task.now() - t0
                yield from lapi.fence()
                return sync_one, pipelined
            yield from lapi.fence()

        sync_one, pipelined = run_spmd(main)[0]
        assert pipelined < reps * sync_one * 0.7, (sync_one, pipelined)
