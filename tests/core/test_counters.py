"""Unit tests for LAPI completion counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.counters import LapiCounter
from repro.errors import LapiError
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def mk(sim, cid=0):
    return LapiCounter(sim, cid)


class TestBasics:
    def test_initial_value_zero(self, sim):
        assert mk(sim).value == 0

    def test_add(self, sim):
        c = mk(sim)
        c.add()
        c.add(3)
        assert c.value == 4
        assert c.total == 4

    def test_add_nonpositive_rejected(self, sim):
        c = mk(sim)
        with pytest.raises(LapiError):
            c.add(0)
        with pytest.raises(LapiError):
            c.add(-1)

    def test_set(self, sim):
        c = mk(sim)
        c.add(5)
        c.set(2)
        assert c.value == 2

    def test_set_negative_rejected(self, sim):
        with pytest.raises(LapiError):
            mk(sim).set(-1)


class TestWaitSemantics:
    def test_wait_event_fires_and_decrements(self, sim):
        c = mk(sim)
        ev = c.wait_event(2)
        assert not ev.triggered
        c.add(1)
        assert not ev.triggered
        c.add(1)
        assert ev.triggered
        assert c.value == 0  # decremented by the threshold

    def test_wait_already_satisfied(self, sim):
        c = mk(sim)
        c.add(3)
        ev = c.wait_event(2)
        assert ev.triggered
        assert c.value == 1

    def test_fifo_waiters(self, sim):
        c = mk(sim)
        e1 = c.wait_event(2)
        e2 = c.wait_event(1)
        c.add(1)
        # Head waiter needs 2; the later 1-threshold waiter must not
        # jump the queue.
        assert not e1.triggered and not e2.triggered
        c.add(2)
        assert e1.triggered and e2.triggered
        assert c.value == 0

    def test_grouped_operations_one_counter(self, sim):
        # Section 2.3: one counter across multiple messages, checked as
        # a group.
        c = mk(sim)
        ev = c.wait_event(5)
        for _ in range(5):
            c.add(1)
        assert ev.triggered

    def test_threshold_validation(self, sim):
        c = mk(sim)
        with pytest.raises(LapiError):
            c.wait_event(0)
        with pytest.raises(LapiError):
            c.try_consume(-1)

    def test_set_can_satisfy_waiter(self, sim):
        c = mk(sim)
        ev = c.wait_event(3)
        c.set(3)
        assert ev.triggered
        assert c.value == 0


class TestTryConsume:
    def test_try_consume(self, sim):
        c = mk(sim)
        assert not c.try_consume(1)
        c.add(2)
        assert c.try_consume(1)
        assert c.value == 1

    def test_try_consume_with_waiters_rejected(self, sim):
        c = mk(sim)
        c.wait_event(5)
        with pytest.raises(LapiError):
            c.try_consume(1)

    def test_waiting_count(self, sim):
        c = mk(sim)
        c.wait_event(1)
        c.wait_event(1)
        assert c.waiting == 2


class TestProperties:
    @given(st.lists(st.integers(min_value=1, max_value=10), min_size=1,
                    max_size=30))
    def test_value_conservation(self, increments):
        """Sum of increments == value + everything consumed by waits."""
        sim = Simulator()
        c = mk(sim)
        consumed = 0
        for i, inc in enumerate(increments):
            c.add(inc)
            if i % 3 == 0 and c.value >= 2:
                assert c.try_consume(2)
                consumed += 2
        assert c.total == sum(increments)
        assert c.value == sum(increments) - consumed

    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=1,
                    max_size=10),
           st.lists(st.integers(min_value=1, max_value=5), min_size=1,
                    max_size=10))
    def test_all_waiters_eventually_served(self, thresholds, adds):
        """Enough increments serve every FIFO waiter, in order."""
        sim = Simulator()
        c = mk(sim)
        events = [c.wait_event(t) for t in thresholds]
        needed = sum(thresholds)
        for a in adds:
            c.add(a)
        c.add(max(needed, 1))  # guarantee enough
        assert all(ev.triggered for ev in events)
        # FIFO order: an event can only trigger after all before it.
        # (All have triggered, so check final value accounting instead.)
        assert c.value == sum(adds) + max(needed, 1) - needed
