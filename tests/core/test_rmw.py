"""Integration tests: LAPI_Rmw atomic operations."""

import pytest

from repro.core import RmwOp
from repro.errors import LapiError

from .conftest import run_spmd


def _word_setup(task, init=0):
    """Allocate the shared word symmetrically; initialize at rank 0."""
    addr = task.memory.malloc(8)
    task.memory.write_i64(addr, init)
    return addr


class TestOps:
    def test_fetch_and_add(self, progress_mode):
        def main(task):
            lapi = task.lapi
            addr = _word_setup(task, init=100)
            yield from lapi.gfence()
            if task.rank == 0:
                prev = yield from lapi.rmw_sync(RmwOp.FETCH_AND_ADD, 1,
                                                addr, 7)
                yield from lapi.gfence()
                return prev
            yield from lapi.gfence()
            return task.memory.read_i64(addr)

        results = run_spmd(main, interrupt_mode=progress_mode)
        assert results[0] == 100
        assert results[1] == 107

    def test_swap(self):
        def main(task):
            lapi = task.lapi
            addr = _word_setup(task, init=5)
            yield from lapi.gfence()
            if task.rank == 0:
                prev = yield from lapi.rmw_sync(RmwOp.SWAP, 1, addr, 42)
                yield from lapi.gfence()
                return prev
            yield from lapi.gfence()
            return task.memory.read_i64(addr)

        results = run_spmd(main)
        assert results == [5, 42]

    def test_compare_and_swap_success_and_failure(self):
        def main(task):
            lapi = task.lapi
            addr = _word_setup(task, init=10)
            yield from lapi.gfence()
            if task.rank == 0:
                p1 = yield from lapi.rmw_sync(RmwOp.COMPARE_AND_SWAP, 1,
                                              addr, 11, cmp_val=10)
                p2 = yield from lapi.rmw_sync(RmwOp.COMPARE_AND_SWAP, 1,
                                              addr, 99, cmp_val=10)
                yield from lapi.gfence()
                return p1, p2
            yield from lapi.gfence()
            return task.memory.read_i64(addr)

        results = run_spmd(main)
        assert results[0] == (10, 11)  # second CAS saw 11, failed
        assert results[1] == 11

    def test_fetch_and_or(self):
        def main(task):
            lapi = task.lapi
            addr = _word_setup(task, init=0b0101)
            yield from lapi.gfence()
            if task.rank == 0:
                prev = yield from lapi.rmw_sync(RmwOp.FETCH_AND_OR, 1,
                                                addr, 0b0010)
                yield from lapi.gfence()
                return prev
            yield from lapi.gfence()
            return task.memory.read_i64(addr)

        results = run_spmd(main)
        assert results == [0b0101, 0b0111]

    def test_cas_requires_cmp_val(self):
        def main(task):
            lapi = task.lapi
            addr = _word_setup(task)
            try:
                yield from lapi.rmw(RmwOp.COMPARE_AND_SWAP, task.rank,
                                    addr, 1)
            except LapiError:
                return "rejected"

        assert run_spmd(main, nnodes=1)[0] == "rejected"

    def test_cmp_val_only_for_cas(self):
        def main(task):
            lapi = task.lapi
            addr = _word_setup(task)
            try:
                yield from lapi.rmw(RmwOp.SWAP, task.rank, addr, 1,
                                    cmp_val=0)
            except LapiError:
                return "rejected"

        assert run_spmd(main, nnodes=1)[0] == "rejected"

    def test_local_rmw_fast_path(self):
        def main(task):
            lapi = task.lapi
            addr = _word_setup(task, init=3)
            prev = yield from lapi.rmw_sync(RmwOp.FETCH_AND_ADD,
                                            task.rank, addr, 4)
            return prev, task.memory.read_i64(addr)

        assert run_spmd(main, nnodes=1)[0] == (3, 7)

    def test_prev_addr_receives_old_value(self):
        def main(task):
            lapi = task.lapi
            addr = _word_setup(task, init=55)
            prev_slot = task.memory.malloc(8)
            yield from lapi.gfence()
            if task.rank == 0:
                org = lapi.counter()
                yield from lapi.rmw(RmwOp.SWAP, 1, addr, 66,
                                    prev_addr=prev_slot, org_cntr=org)
                yield from lapi.waitcntr(org, 1)
                yield from lapi.gfence()
                return task.memory.read_i64(prev_slot)
            yield from lapi.gfence()

        assert run_spmd(main)[0] == 55


class TestAtomicity:
    def test_fetch_and_add_is_atomic_under_contention(self, progress_mode):
        """Every rank increments the same remote word; no update lost --
        the mutual-exclusion use case of section 2.4."""
        per_rank = 10

        def main(task):
            lapi = task.lapi
            addr = _word_setup(task, init=0)
            yield from lapi.gfence()
            got = []
            if task.rank != 0:
                for _ in range(per_rank):
                    prev = yield from lapi.rmw_sync(RmwOp.FETCH_AND_ADD,
                                                    0, addr, 1)
                    got.append(prev)
            yield from lapi.gfence()
            if task.rank == 0:
                return task.memory.read_i64(addr)
            return got

        results = run_spmd(main, nnodes=4, interrupt_mode=progress_mode)
        assert results[0] == 3 * per_rank
        # Fetched values are all distinct: true read-modify-write.
        fetched = [v for r in results[1:] for v in r]
        assert sorted(fetched) == list(range(3 * per_rank))

    def test_spinlock_via_cas(self):
        """A lock built from COMPARE_AND_SWAP + SWAP mutually excludes."""
        def main(task):
            lapi = task.lapi
            lock_addr = _word_setup(task, init=0)
            shared = task.memory.malloc(8)
            task.memory.write_i64(shared, 0)
            yield from lapi.gfence()
            for _ in range(5):
                while True:
                    prev = yield from lapi.rmw_sync(
                        RmwOp.COMPARE_AND_SWAP, 0, lock_addr, 1,
                        cmp_val=0)
                    if prev == 0:
                        break
                # Critical section: non-atomic read-modify-write of the
                # shared word, safe only under the lock.
                v = yield from lapi.rmw_sync(RmwOp.FETCH_AND_ADD, 0,
                                             shared, 0)
                yield from lapi.rmw_sync(RmwOp.SWAP, 0, shared, v + 1)
                # Release.
                yield from lapi.rmw_sync(RmwOp.SWAP, 0, lock_addr, 0)
            yield from lapi.gfence()
            if task.rank == 0:
                return task.memory.read_i64(shared)

        assert run_spmd(main, nnodes=3)[0] == 15
