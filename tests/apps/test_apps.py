"""Integration tests for the application kernels on both GA backends."""

import numpy as np
import pytest

from repro.apps import ga_matmul, ga_transpose, md_step_loop, scf_iteration
from repro.machine import Cluster


def run_app(fn, nnodes=4, backend="lapi", seed=1):
    cluster = Cluster(nnodes=nnodes, seed=seed)
    return cluster.run_job(fn, ga_backend=backend)


@pytest.fixture(params=["lapi", "mpl"])
def backend(request):
    return request.param


class TestMatmul:
    def _driver(self, n=24, k=20, m=28):
        def main(task):
            ga = task.ga
            a_h = yield from ga.create((n, k), name="A")
            b_h = yield from ga.create((k, m), name="B")
            c_h = yield from ga.create((n, m), name="C")
            rng = np.random.default_rng(42)
            a_ref = rng.random((n, k))
            b_ref = rng.random((k, m))
            if task.rank == 0:
                yield from ga.put_ndarray(a_h, (0, n - 1, 0, k - 1),
                                          a_ref)
                yield from ga.put_ndarray(b_h, (0, k - 1, 0, m - 1),
                                          b_ref)
            yield from ga.sync()
            elapsed = yield from ga_matmul(task, a_h, b_h, c_h,
                                           kblock=8)
            got = yield from ga.get_ndarray(c_h, (0, n - 1, 0, m - 1))
            yield from ga.sync()
            return np.allclose(got, a_ref @ b_ref), elapsed
        return main

    def test_matmul_matches_numpy(self, backend):
        results = run_app(self._driver(), backend=backend)
        assert all(ok for ok, _ in results)
        assert all(t > 0 for _, t in results)

    def test_matmul_shape_mismatch(self, backend):
        def main(task):
            ga = task.ga
            a_h = yield from ga.create((8, 8))
            b_h = yield from ga.create((9, 8))
            c_h = yield from ga.create((8, 8))
            yield from ga.sync()
            try:
                yield from ga_matmul(task, a_h, b_h, c_h)
            except ValueError:
                yield from ga.sync()
                return "rejected"

        assert run_app(main, backend=backend)[0] == "rejected"


class TestTranspose:
    def test_transpose_correct(self, backend):
        n, m = 24, 36

        def main(task):
            ga = task.ga
            a_h = yield from ga.create((n, m), name="A")
            b_h = yield from ga.create((m, n), name="B")
            rng = np.random.default_rng(3)
            a_ref = rng.random((n, m))
            if task.rank == 0:
                yield from ga.put_ndarray(a_h, (0, n - 1, 0, m - 1),
                                          a_ref)
            yield from ga.sync()
            yield from ga_transpose(task, a_h, b_h)
            got = yield from ga.get_ndarray(b_h, (0, m - 1, 0, n - 1))
            yield from ga.sync()
            return np.array_equal(got, a_ref.T)

        assert all(run_app(main, backend=backend))

    def test_transpose_shape_check(self, backend):
        def main(task):
            ga = task.ga
            a_h = yield from ga.create((8, 12))
            b_h = yield from ga.create((8, 12))
            yield from ga.sync()
            try:
                yield from ga_transpose(task, a_h, b_h)
            except ValueError:
                yield from ga.sync()
                return "rejected"

        assert run_app(main, backend=backend)[0] == "rejected"


class TestScf:
    def test_scf_runs_and_agrees_across_ranks(self, backend):
        def main(task):
            out = yield from scf_iteration(task, nbf=32, patch=8,
                                           iterations=1)
            return out

        results = run_app(main, backend=backend)
        checksums = {round(r["checksum"], 9) for r in results}
        assert len(checksums) == 1  # all ranks see the same F
        # Dynamic load balancing: all work items processed exactly once.
        assert sum(r["items"] for r in results) == 16

    def test_scf_backends_agree_numerically(self):
        def main(task):
            out = yield from scf_iteration(task, nbf=32, patch=8,
                                           iterations=2)
            return out["checksum"]

        lapi = run_app(main, backend="lapi")[0]
        mpl = run_app(main, backend="mpl")[0]
        assert lapi == pytest.approx(mpl, rel=1e-12)

    def test_scf_patch_must_divide(self):
        def main(task):
            try:
                yield from scf_iteration(task, nbf=30, patch=8)
            except ValueError:
                return "rejected"

        assert run_app(main, nnodes=1)[0] == "rejected"


class TestMd:
    def test_md_runs_and_agrees(self, backend):
        def main(task):
            out = yield from md_step_loop(task, natoms=64, steps=2)
            return out

        results = run_app(main, backend=backend)
        checksums = {round(r["checksum"], 9) for r in results}
        assert len(checksums) == 1
        assert all(r["elapsed_us"] > 0 for r in results)

    def test_md_backends_agree_numerically(self):
        def main(task):
            out = yield from md_step_loop(task, natoms=64, steps=2)
            return out["checksum"]

        lapi = run_app(main, backend="lapi")[0]
        mpl = run_app(main, backend="mpl")[0]
        assert lapi == pytest.approx(mpl, rel=1e-12)


class TestLapiFasterThanMpl:
    """Section 5.4's qualitative claim, as a test: the LAPI versions of
    the kernels are faster than the MPL versions."""

    def _elapsed(self, fn, backend):
        results = run_app(fn, backend=backend)
        return max(r if isinstance(r, float) else r["elapsed_us"]
                   for r in results)

    def test_transpose_lapi_wins(self):
        n = 64

        def main(task):
            ga = task.ga
            a_h = yield from ga.create((n, n))
            b_h = yield from ga.create((n, n))
            yield from ga.zero(a_h)
            yield from ga.sync()
            elapsed = yield from ga_transpose(task, a_h, b_h)
            return elapsed

        lapi = self._elapsed(main, "lapi")
        mpl = self._elapsed(main, "mpl")
        assert lapi < mpl, (lapi, mpl)

    def test_scf_lapi_wins(self):
        def main(task):
            out = yield from scf_iteration(task, nbf=32, patch=8)
            return out

        lapi = self._elapsed(main, "lapi")
        mpl = self._elapsed(main, "mpl")
        assert lapi < mpl, (lapi, mpl)
