"""Tests for the Jacobi halo-exchange kernel."""

import numpy as np
import pytest

from repro.apps import jacobi_sweeps
from repro.machine import Cluster


def run_jacobi(nnodes=4, backend="lapi", **kw):
    def main(task):
        out = yield from jacobi_sweeps(task, **kw)
        return out

    return Cluster(nnodes=nnodes, seed=3).run_job(main,
                                                  ga_backend=backend)


def serial_reference(n, sweeps, hot_edge=100.0):
    grid = np.zeros((n, n))
    grid[0, :] = hot_edge
    for _ in range(sweeps):
        new = grid.copy()
        new[1:-1, 1:-1] = 0.25 * (grid[:-2, 1:-1] + grid[2:, 1:-1]
                                  + grid[1:-1, :-2] + grid[1:-1, 2:])
        grid = new
    return grid


@pytest.fixture(params=["lapi", "mpl"])
def backend(request):
    return request.param


class TestJacobi:
    def test_residual_agrees_across_ranks(self, backend):
        results = run_jacobi(backend=backend, n=16, sweeps=2)
        residuals = {round(r["residual"], 12) for r in results}
        assert len(residuals) == 1
        assert all(r["elapsed_us"] > 0 for r in results)

    def test_matches_serial_reference(self):
        """The distributed sweep computes exactly the serial Jacobi."""
        n, sweeps = 16, 3

        def main(task):
            ga = task.ga
            out = yield from jacobi_sweeps(task, n=n, sweeps=sweeps)
            return out["residual"]

        results = Cluster(nnodes=4, seed=3).run_job(main,
                                                    ga_backend="lapi")
        ref = serial_reference(n, sweeps)
        ref_prev = serial_reference(n, sweeps - 1)
        expected_residual = float(np.abs(ref - ref_prev).max())
        assert results[0] == pytest.approx(expected_residual)

    def test_residual_decreases_with_sweeps(self):
        r2 = run_jacobi(n=16, sweeps=2)[0]["residual"]
        r6 = run_jacobi(n=16, sweeps=6)[0]["residual"]
        assert r6 < r2

    def test_tiny_grid_rejected(self):
        from repro.errors import GaError

        def main(task):
            try:
                yield from jacobi_sweeps(task, n=2)
            except GaError:
                return "rejected"

        assert Cluster(nnodes=1).run_job(
            main, ga_backend="lapi")[0] == "rejected"

    def test_ghost_path_matches_strip_path(self):
        """The ghost-cell implementation computes exactly the same
        field as the hand-rolled strip exchange."""
        def main_strips(task):
            out = yield from jacobi_sweeps(task, n=16, sweeps=3)
            return out["residual"]

        def main_ghosts(task):
            out = yield from jacobi_sweeps(task, n=16, sweeps=3,
                                           use_ghosts=True)
            return out["residual"]

        strips = Cluster(nnodes=4, seed=3).run_job(
            main_strips, ga_backend="lapi")
        ghosts = Cluster(nnodes=4, seed=3).run_job(
            main_ghosts, ga_backend="lapi")
        assert strips[0] == pytest.approx(ghosts[0], rel=1e-12)

    def test_ghost_path_matches_serial(self):
        n, sweeps = 16, 3

        def main(task):
            out = yield from jacobi_sweeps(task, n=n, sweeps=sweeps,
                                           use_ghosts=True)
            return out["residual"]

        results = Cluster(nnodes=4, seed=3).run_job(main,
                                                    ga_backend="lapi")
        ref = serial_reference(n, sweeps)
        ref_prev = serial_reference(n, sweeps - 1)
        assert results[0] == pytest.approx(
            float(np.abs(ref - ref_prev).max()))

    def test_lapi_faster_than_mpl(self):
        lapi = max(r["elapsed_us"] for r in run_jacobi(backend="lapi",
                                                       n=32, sweeps=2))
        mpl = max(r["elapsed_us"] for r in run_jacobi(backend="mpl",
                                                      n=32, sweeps=2))
        assert lapi < mpl
