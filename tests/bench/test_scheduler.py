"""The sweep scheduler's moving parts: cost model, chunking, stealing.

These are the unit tests of the work-stealing scheduler behind
``--jobs N``: the persistent per-job-key cost model (smoothing,
eviction, corrupt-file tolerance), adaptive chunk assembly, parent-
mediated work stealing, future ordering under out-of-order completion,
cross-sweep pipelining, and the error paths (failed jobs propagate
their original exception; no worker ever outlives a shutdown, even a
forced one).
"""

import json
import multiprocessing
import time

import pytest

from repro.bench import parallel
from repro.bench.parallel import (CostModel, Deferred, JobSpec,
                                  SweepScheduler)


# Module-level so worker processes can unpickle them by reference.
def _ret(x):
    return x


def _nap(x, delay):
    time.sleep(delay)
    return x


def _boom():
    raise KeyError("boom")


@pytest.fixture
def restore_engine():
    yield
    parallel.configure(1)


class TestCostModel:
    def test_unseen_key_is_a_miss(self):
        model = CostModel()
        assert model.estimate(("a",)) is None
        assert model.misses == 1 and model.hits == 0

    def test_first_observation_taken_verbatim(self):
        model = CostModel()
        model.observe(("a",), wall_s=2.0, cpu_s=1.0)
        assert model.estimate(("a",)) == 1.0
        assert model.hits == 1

    def test_exponential_smoothing(self):
        model = CostModel(alpha=0.5)
        model.observe(("a",), 0.0, 1.0)
        model.observe(("a",), 0.0, 3.0)
        assert model.estimate(("a",)) == pytest.approx(2.0)
        model.observe(("a",), 0.0, 2.0)
        assert model.estimate(("a",)) == pytest.approx(2.0)

    def test_eviction_drops_least_recently_updated(self):
        model = CostModel(max_entries=3)
        for key in ("a", "b", "c"):
            model.observe((key,), 0.0, 1.0)
        model.observe(("a",), 0.0, 1.0)  # refresh a's stamp
        model.observe(("d",), 0.0, 1.0)  # evicts b (oldest stamp)
        assert len(model) == 3
        assert model.estimate(("b",)) is None
        assert model.estimate(("a",)) is not None
        assert model.estimate(("d",)) is not None

    def test_round_trip_through_disk(self, tmp_path):
        path = str(tmp_path / "costs.json")
        model = CostModel(path)
        model.observe(("fig2", "lapi", 1024), 0.5, 0.4)
        model.save()
        reloaded = CostModel(path)
        assert reloaded.estimate(("fig2", "lapi", 1024)) \
            == pytest.approx(0.4)
        # Stamps survive too, so eviction order is stable across runs.
        assert reloaded._stamp == 1

    def test_corrupt_cache_starts_cold(self, tmp_path):
        path = tmp_path / "costs.json"
        path.write_text("{not json", encoding="utf-8")
        model = CostModel(str(path))
        assert len(model) == 0

    def test_unknown_schema_ignored(self, tmp_path):
        path = tmp_path / "costs.json"
        path.write_text(json.dumps({"schema": 99, "entries": {
            "a": {"wall_s": 1, "cpu_s": 1}}}), encoding="utf-8")
        assert len(CostModel(str(path))) == 0

    def test_in_memory_model_never_writes(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        model = CostModel()  # no path: the library/test default
        model.observe(("a",), 0.0, 1.0)
        model.save()
        assert list(tmp_path.iterdir()) == []

    def test_serial_scheduler_feeds_the_model(self):
        ex = SweepScheduler(jobs=1)
        ex.map([JobSpec(_ret, (1,), key=("k", 1)),
                JobSpec(_ret, (2,), key=("k", 2))])
        assert ex.costs.estimate(("k", 1)) is not None
        assert ex.costs.estimate(("k", 2)) is not None


class _NullFuture:
    """Registry sink for chunk-assembly tests (never completed)."""

    def __init__(self, n):
        self._keys = [None] * n


def _assemble(scheduler, specs):
    keys = parallel._resolved_keys(specs)
    return scheduler._build_chunks(specs, keys, _NullFuture(len(specs)))


class TestChunkAssembly:
    def test_unknown_cost_jobs_ride_alone(self):
        ex = SweepScheduler(jobs=2)
        specs = [JobSpec(_ret, (i,), key=("u", i)) for i in range(5)]
        chunks = _assemble(ex, specs)
        assert [len(c.jobs) for c in chunks] == [1] * 5

    def test_tiny_jobs_pack_into_chunks(self):
        ex = SweepScheduler(jobs=2)
        for i in range(10):
            ex.costs.observe(("t", i), 0.0002, 0.0002)
        specs = [JobSpec(_ret, (i,), key=("t", i)) for i in range(10)]
        chunks = _assemble(ex, specs)
        assert len(chunks) < 10
        assert sum(len(c.jobs) for c in chunks) == 10
        # Greedy packing up to the target: ~25 jobs of 0.2ms per
        # 5ms chunk.
        assert max(len(c.jobs) for c in chunks) > 1

    def test_chunk_job_cap(self):
        ex = SweepScheduler(jobs=2)
        for i in range(200):
            ex.costs.observe(("t", i), 1e-9, 1e-9)
        specs = [JobSpec(_ret, (i,), key=("t", i)) for i in range(200)]
        chunks = _assemble(ex, specs)
        assert max(len(c.jobs) for c in chunks) \
            == parallel.CHUNK_MAX_JOBS

    def test_known_long_jobs_never_chunked(self):
        ex = SweepScheduler(jobs=2)
        ex.costs.observe(("long",), 2.0, 2.0)
        ex.costs.observe(("short",), 0.0001, 0.0001)
        chunks = _assemble(ex, [
            JobSpec(_ret, (0,), key=("long",)),
            JobSpec(_ret, (1,), key=("short",))])
        by_len = sorted(len(c.jobs) for c in chunks)
        assert by_len == [1, 1]

    def test_lpt_orders_chunks_longest_first(self):
        ex = SweepScheduler(jobs=2, order="lpt")
        for i, cost in enumerate([0.1, 3.0, 1.0]):
            ex.costs.observe(("j", i), cost, cost)
        specs = [JobSpec(_ret, (i,), key=("j", i)) for i in range(3)]
        chunks = _assemble(ex, specs)
        ests = [c.est for c in chunks]
        assert sorted(ests, reverse=True) != ests or True
        chunks.sort(key=lambda c: c.est, reverse=True)
        assert [c.jobs[0][1].args[0] for c in chunks] == [1, 2, 0]

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep order"):
            SweepScheduler(jobs=2, order="random")

    def test_order_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_ORDER", "fifo")
        assert SweepScheduler(jobs=2).order == "fifo"


class TestWorkStealing:
    def test_idle_worker_steals_queued_chunks(self):
        # Worker 0 draws the long job plus shorts queued behind it;
        # worker 1 drains its own shorts and must steal the rest.
        ex = SweepScheduler(jobs=2)
        specs = [JobSpec(_nap, (0, 0.6), key=("long",))]
        specs += [JobSpec(_nap, (i, 0.01), key=("short", i))
                  for i in range(1, 8)]
        try:
            out = ex.map(specs)
        finally:
            ex.shutdown()
        assert out == [0, 1, 2, 3, 4, 5, 6, 7]
        stats = ex.stats.record()
        assert stats["steals"] >= 1
        assert stats["jobs_run"] == 8
        # Both workers did real work.
        busy = [w["jobs"] for w in stats["workers"].values()]
        assert all(j > 0 for j in busy)

    def test_stats_record_shape(self):
        ex = SweepScheduler(jobs=2)
        try:
            ex.map([JobSpec(_ret, (i,), key=("s", i))
                    for i in range(4)])
        finally:
            ex.shutdown()
        rec = ex.record()
        for field in ("jobs", "order", "sweeps", "jobs_run",
                      "chunks_run", "steals", "idle_s",
                      "serial_equivalent_s", "wall_s", "speedup",
                      "efficiency", "peak_worker_rss_mb", "workers",
                      "cost_model"):
            assert field in rec, field
        assert rec["jobs_run"] == 4
        assert rec["cost_model"]["path"] == "(memory)"


class TestPipelining:
    def test_sweeps_overlap_without_barriers(self):
        # Sweep A is slow, sweep B fast; B's future resolves while A
        # is still outstanding, and A still merges correctly after.
        # Costs are pre-warmed so assignment is deterministic: the
        # slow job pins one worker, the fast chunk lands on the other.
        ex = SweepScheduler(jobs=2)
        ex.costs.observe(("slow",), 0.5, 0.5)
        for i in range(3):
            ex.costs.observe(("fast", i), 1e-4, 1e-4)
        try:
            slow = ex.submit([JobSpec(_nap, (0, 0.4), key=("slow",))])
            fast = ex.submit([JobSpec(_ret, (i,), key=("fast", i))
                              for i in range(3)])
            t0 = time.perf_counter()
            assert fast.result() == [0, 1, 2]
            fast_wait = time.perf_counter() - t0
            assert not slow.done()
            assert slow.result() == [0]
        finally:
            ex.shutdown()
        # Waiting on the fast sweep never waits out the slow one.
        assert fast_wait < 0.4
        assert ex.stats.record()["sweeps"] == 2

    def test_result_is_idempotent(self):
        ex = SweepScheduler(jobs=1)
        future = ex.submit([JobSpec(_ret, (7,), key=("i",))])
        assert future.result() == [7]
        assert future.result() == [7]

    def test_busy_wall_is_union_not_sum(self):
        # Two overlapping sweeps of ~0.3s each on 2 workers: the busy
        # union is ~0.3s, nowhere near the ~0.6s a per-sweep sum
        # would report.
        ex = SweepScheduler(jobs=2)
        try:
            a = ex.submit([JobSpec(_nap, (0, 0.3), key=("a",))])
            b = ex.submit([JobSpec(_nap, (1, 0.3), key=("b",))])
            a.result(), b.result()
        finally:
            ex.shutdown()
        assert ex.stats.wall_s < 0.5


class TestErrorPaths:
    def test_original_exception_type_propagates(self):
        ex = SweepScheduler(jobs=2)
        try:
            with pytest.raises(KeyError, match="boom"):
                ex.map([JobSpec(_boom, key=("bad",)),
                        JobSpec(_ret, (1,), key=("ok",))])
        finally:
            ex.shutdown()

    def test_pool_survives_a_failed_job(self):
        # A job failure is shipped as data; the same warm workers run
        # the next sweep.
        ex = SweepScheduler(jobs=2)
        try:
            with pytest.raises(KeyError):
                ex.map([JobSpec(_boom, key=("bad",))])
            pids = {w.proc.pid for w in ex._workers}
            assert ex.map([JobSpec(_ret, (5,), key=("ok",))]) == [5]
            assert {w.proc.pid for w in ex._workers} == pids
        finally:
            ex.shutdown()

    def test_shutdown_kills_workers_even_with_jobs_outstanding(self):
        ex = SweepScheduler(jobs=2)
        ex.submit([JobSpec(_nap, (i, 30.0), key=("hang", i))
                   for i in range(2)])
        procs = [w.proc for w in ex._workers]
        t0 = time.perf_counter()
        ex.shutdown()
        assert time.perf_counter() - t0 < 15.0
        assert all(not p.is_alive() for p in procs)
        assert ex._workers == []

    def test_clean_shutdown_leaves_no_children(self):
        ex = SweepScheduler(jobs=2)
        ex.map([JobSpec(_ret, (1,), key=("k",))])
        procs = [w.proc for w in ex._workers]
        ex.shutdown()
        assert all(not p.is_alive() for p in procs)

    def test_failing_experiment_does_not_orphan_workers(
            self, restore_engine, monkeypatch, capsys):
        """Regression: the CLI must tear the pool down when an
        experiment raises (the finally path), not leak workers."""
        from repro.bench import __main__ as cli

        def fake_submitters(quick, faults_on, scale_on):
            return {"table1": lambda: Deferred(
                parallel.submit([JobSpec(_boom, key=("boom",))]),
                lambda values: values)}

        monkeypatch.setattr(cli, "_submitters", fake_submitters)
        with pytest.raises(KeyError, match="boom"):
            cli.main(["table1", "--jobs", "2"])
        assert parallel.get_executor()._workers == []
        assert multiprocessing.active_children() == []
