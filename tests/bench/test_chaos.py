"""Chaos bench: scenario determinism and serial/parallel parity."""

import pytest

from repro.bench import parallel, runner
from repro.bench.chaos import (CHAOS_BYTES, CHAOS_SEED, chaos_jobs,
                               chaos_point, chaos_scenarios, run_chaos)
from repro.bench.parallel import sweep
from repro.faults import FaultSchedule, GilbertElliott


@pytest.fixture
def restore_engine():
    yield
    runner.configure_observability()
    parallel.configure(1)


class TestScenarios:
    def test_baseline_first_and_unique_names(self):
        names = [n for n, _ in chaos_scenarios()]
        assert names[0] == "baseline"
        assert len(names) == len(set(names))

    def test_quick_is_a_subset(self):
        full = dict(chaos_scenarios())
        quick = chaos_scenarios(quick=True)
        assert 1 < len(quick) < len(full)
        assert all((s is None and full[n] is None)
                   or full[n].clauses == s.clauses for n, s in quick)
        assert quick[0][0] == "baseline"

    def test_all_schedules_validate(self):
        for name, sched in chaos_scenarios():
            assert sched is None or isinstance(sched, FaultSchedule)


class TestChaosPoint:
    def test_same_args_identical(self):
        sched = FaultSchedule([GilbertElliott(loss_good=0.05)])
        a = chaos_point(CHAOS_BYTES, 6, sched, CHAOS_SEED)
        b = chaos_point(CHAOS_BYTES, 6, sched, CHAOS_SEED)
        assert a == b
        assert a["intact"] and a["fault_drops"] > 0

    def test_baseline_point_fault_free(self):
        rec = chaos_point(CHAOS_BYTES, 4, None, CHAOS_SEED)
        assert rec["retransmissions"] == 0
        assert rec["fault_drops"] == 0 and rec["crc_drops"] == 0
        assert rec["intact"]


class TestRunChaos:
    def test_quick_sweep_passes_all_checks(self):
        result = run_chaos(quick=True)
        assert result.all_passed, result.render()
        assert len(result.rows) == len(chaos_scenarios(quick=True))
        assert set(result.payload) == {n for n, _
                                       in chaos_scenarios(quick=True)}

    def test_parallel_matches_serial(self, restore_engine):
        serial = sweep(chaos_jobs(quick=True))
        parallel.configure(jobs=2)
        pooled = sweep(chaos_jobs(quick=True))
        assert pooled == serial
