"""Chaos bench: scenario determinism and serial/parallel parity."""

import pytest

from repro.bench import parallel, runner
from repro.bench.chaos import (CHAOS_BYTES, CHAOS_SEED,
                               CHAOS_WINDOW_US, chaos_jobs,
                               chaos_point, chaos_scenarios,
                               crash_scenarios, degradation_pct,
                               run_chaos)
from repro.bench.parallel import sweep
from repro.faults import FaultSchedule, GilbertElliott, LinkOutage


@pytest.fixture
def restore_engine():
    yield
    runner.configure_observability()
    parallel.configure(1)


class TestScenarios:
    def test_baseline_first_and_unique_names(self):
        names = [n for n, _ in chaos_scenarios()]
        assert names[0] == "baseline"
        assert len(names) == len(set(names))

    def test_quick_is_a_subset(self):
        full = dict(chaos_scenarios())
        quick = chaos_scenarios(quick=True)
        assert 1 < len(quick) < len(full)
        assert all((s is None and full[n] is None)
                   or full[n].clauses == s.clauses for n, s in quick)
        assert quick[0][0] == "baseline"

    def test_all_schedules_validate(self):
        for name, sched in chaos_scenarios():
            assert sched is None or isinstance(sched, FaultSchedule)


class TestChaosPoint:
    def test_same_args_identical(self):
        sched = FaultSchedule([GilbertElliott(loss_good=0.05)])
        a = chaos_point(CHAOS_BYTES, 6, sched, CHAOS_SEED)
        b = chaos_point(CHAOS_BYTES, 6, sched, CHAOS_SEED)
        assert a == b
        assert a["intact"] and a["fault_drops"] > 0

    def test_baseline_point_fault_free(self):
        rec = chaos_point(CHAOS_BYTES, 4, None, CHAOS_SEED)
        assert rec["retransmissions"] == 0
        assert rec["fault_drops"] == 0 and rec["crc_drops"] == 0
        assert rec["intact"]
        assert rec["detection_us"] is None

    def test_point_emits_time_resolved_goodput_curve(self):
        rec = chaos_point(CHAOS_BYTES, 4, None, CHAOS_SEED)
        assert rec["window_us"] == CHAOS_WINDOW_US
        # Zero-delta windows are legitimate (fence/control packets
        # deliver no payload bytes but still touch the stream).
        windows = rec["goodput_windows"]
        assert windows and all(
            isinstance(w, int) and d >= 0 for w, d in windows)
        assert any(d > 0 for _, d in windows)
        assert [w for w, _ in windows] == sorted(w for w, _ in windows)
        # The curve accounts for every delivered payload byte: the puts
        # plus fence/control traffic both directions.
        assert sum(d for _, d in windows) >= CHAOS_BYTES * 4

    def test_outage_point_records_detection_and_gap(self):
        sched = FaultSchedule([
            LinkOutage(src=0, dst=1, start=400.0, end=900.0)])
        rec = chaos_point(CHAOS_BYTES, 6, sched, CHAOS_SEED)
        assert rec["detection_us"] is not None
        assert rec["detection_us"] >= 400.0
        # During the outage the goodput curve dips: some window in the
        # active span delivers less than the curve's best window.
        deltas = dict(rec["goodput_windows"])
        span = range(min(deltas), max(deltas) + 1)
        assert min(deltas.get(w, 0) for w in span) < max(deltas.values())


class TestDegradationPct:
    def test_negative_dust_clamps_to_zero(self):
        # Regression: a scenario a float-hair *faster* than baseline
        # used to render "-0.0" in the degradation column.
        value = degradation_pct(35.2000001, 35.2)
        assert value == 0.0
        assert str(value) == "0.0"  # not "-0.0"

    def test_equal_goodput_is_zero(self):
        assert degradation_pct(10.0, 10.0) == 0.0

    def test_positive_degradation_rounds(self):
        assert degradation_pct(5.0, 10.0) == 50.0
        assert degradation_pct(8.77, 10.0) == 12.3


class TestRunChaos:
    def test_quick_sweep_passes_all_checks(self):
        result = run_chaos(quick=True)
        assert result.all_passed, result.render()
        expected = [n for n, _ in chaos_scenarios(quick=True)]
        expected += [n for n, _ in crash_scenarios(quick=True)]
        assert len(result.rows) == len(expected)
        assert set(result.payload) == set(expected)

    def test_parallel_matches_serial(self, restore_engine):
        serial = sweep(chaos_jobs(quick=True))
        parallel.configure(jobs=2)
        pooled = sweep(chaos_jobs(quick=True))
        assert pooled == serial
