"""The parallel sweep engine: seed spread, key merge, determinism.

The engine's contract is that ``--jobs N`` is an invisible wall-clock
optimization: results, ``--metrics`` blocks, and virtual-time numbers
are byte-identical to a serial run.  These tests pin the unit pieces
(SplitMix seed spread, job-key resolution and ordering) and the
end-to-end guarantee on reduced fig2/table2 sweeps.
"""

import time

import pytest

from repro.bench import parallel, runner
from repro.bench.bandwidth import run_fig2
from repro.bench.latency import lapi_pingpong_job, run_table2
from repro.bench.parallel import (JobSpec, SweepExecutor, host_record,
                                  parse_jobs, spread_seed)


# Module-level so worker processes can unpickle them by reference.
def _add(a, b):
    return a + b


def _slow_identity(x, delay):
    # Variable delay scrambles completion order across pool workers;
    # the merge must put results back in spec order regardless.
    time.sleep(delay)
    return x


def _pingpong_job():
    return lapi_pingpong_job(interrupt_mode=False)


@pytest.fixture
def restore_engine():
    yield
    runner.configure_observability()
    parallel.configure(1)


class TestSpreadSeed:
    def test_seeds_are_distinct(self):
        seeds = [spread_seed(0xBE1, i) for i in range(1000)]
        assert len(set(seeds)) == 1000

    def test_seeds_are_stable(self):
        # Fixed values: the spread is part of the reproducibility
        # contract, so a silent algorithm change must fail loudly.
        assert spread_seed(0xBE1, 0) == spread_seed(0xBE1, 0)
        assert spread_seed(0xBE1, 0) != spread_seed(0xBE1, 1)
        assert spread_seed(0, 0) == 16294208416658607535

    def test_bases_decouple(self):
        a = {spread_seed(0xA5, i) for i in range(100)}
        b = {spread_seed(0xF1, i) for i in range(100)}
        assert not (a & b)

    def test_seeds_fit_64_bits(self):
        for i in range(100):
            assert 0 <= spread_seed(0xBE1, i) < (1 << 64)


class TestJobKeys:
    def test_explicit_keys_preserved(self):
        specs = [JobSpec(_add, (i, 1), key=("k", i)) for i in range(3)]
        assert parallel._resolved_keys(specs) == [
            ("k", 0), ("k", 1), ("k", 2)]

    def test_empty_key_derived_from_fn_and_index(self):
        specs = [JobSpec(_add, (i, 1)) for i in range(2)]
        keys = parallel._resolved_keys(specs)
        assert keys[0] != keys[1]
        assert keys[0][:2] == (_add.__module__, _add.__qualname__)

    def test_duplicate_keys_rejected(self):
        specs = [JobSpec(_add, (0, 1), key=("dup",)),
                 JobSpec(_add, (1, 1), key=("dup",))]
        with pytest.raises(ValueError, match="duplicate job key"):
            SweepExecutor(jobs=1).map(specs)


class TestExecutor:
    def test_serial_results_in_spec_order(self):
        ex = SweepExecutor(jobs=1)
        out = ex.map([JobSpec(_add, (i, 10), key=("s", i))
                      for i in range(5)])
        assert out == [10, 11, 12, 13, 14]

    def test_empty_sweep(self):
        assert SweepExecutor(jobs=4).map([]) == []

    def test_parallel_results_in_spec_order(self):
        # Later specs finish first (shorter sleeps); the merge by job
        # key must still return values in submission order.
        delays = [0.2, 0.15, 0.1, 0.05, 0.0]
        ex = SweepExecutor(jobs=4)
        try:
            out = ex.map([JobSpec(_slow_identity, (i, d), key=("p", i))
                          for i, d in enumerate(delays)])
        finally:
            ex.shutdown()
        assert out == [0, 1, 2, 3, 4]
        stats = ex.stats.record()
        assert stats["jobs_run"] == 5
        assert stats["sweeps"] == 1

    def test_single_spec_uses_pool(self):
        # Even one-spec sweeps go through the pool when jobs>1: under
        # pipelined submission an inline run would interleave its live
        # captures with other sweeps' worker-shipped ones.
        ex = SweepExecutor(jobs=4)
        try:
            assert ex.map([JobSpec(_add, (1, 2))]) == [3]
            assert ex._pool is not None
        finally:
            ex.shutdown()

    def test_serial_scheduler_never_forks(self):
        ex = SweepExecutor(jobs=1)
        assert ex.map([JobSpec(_add, (1, 2)),
                       JobSpec(_add, (3, 4))]) == [3, 7]
        assert ex._pool is None  # never forked

    def test_worker_exception_propagates(self):
        ex = SweepExecutor(jobs=2)
        specs = [JobSpec(_add, (1,), key=("bad", i)) for i in range(2)]
        try:
            with pytest.raises(TypeError):
                ex.map(specs)
        finally:
            ex.shutdown()


class TestCaptureShipping:
    def test_parallel_captures_match_serial(self, restore_engine):
        """Worker-shipped captures equal in-process conversions."""
        specs = [JobSpec(_pingpong_job, key=("cap", i))
                 for i in range(3)]

        runner.configure_observability(metrics=True, capture=True)
        parallel.configure(1)
        serial_values = parallel.sweep(specs)
        serial_caps = runner.drain_captures()

        parallel.configure(4)
        par_values = parallel.sweep(specs)
        par_caps = runner.drain_captures()

        assert par_values == serial_values
        assert len(par_caps) == len(serial_caps) == 3
        for a, b in zip(serial_caps, par_caps):
            assert a.nnodes == b.nnodes
            assert a.now == b.now
            assert a.events == b.events
            assert a.metrics_block == b.metrics_block

    def test_trace_records_match_serial(self, restore_engine):
        """Trace parity requires packet uids to restart per cluster:
        a serial run's second cluster must not number its packets
        after the first's, or a fork-fresh worker diverges."""
        specs = [JobSpec(_pingpong_job, key=("trace", i))
                 for i in range(3)]

        runner.configure_observability(trace=True, capture=True)
        parallel.configure(1)
        parallel.sweep(specs)
        serial_caps = runner.drain_captures()

        parallel.configure(4)
        parallel.sweep(specs)
        par_caps = runner.drain_captures()

        serial_traces = [c.trace for c in serial_caps]
        par_traces = [c.trace for c in par_caps]
        assert serial_traces[0], "expected trace records"
        # Identical clusters produce identical traces...
        assert serial_traces[0] == serial_traces[1] == serial_traces[2]
        # ...and the worker-shipped records match the serial ones,
        # packet uids included.
        assert par_traces == serial_traces


def _run_reduced_suite():
    """Reduced fig2 + table2 with full observability; returns every
    surface the determinism guarantee covers."""
    fig2 = run_fig2(sizes=[1024, 16384])
    fig2_caps = runner.drain_captures()
    table2 = run_table2()
    table2_caps = runner.drain_captures()
    return {
        "fig2_render": fig2.render(),
        "table2_render": table2.render(),
        "metrics": [c.metrics_block for c in fig2_caps + table2_caps],
        "virtual_us": [c.now for c in fig2_caps + table2_caps],
        "events": [c.events for c in fig2_caps + table2_caps],
        "clusters": len(fig2_caps) + len(table2_caps),
    }


class TestDeterminism:
    def test_jobs1_and_jobs4_byte_identical(self, restore_engine):
        """The acceptance guarantee on a reduced sweep: rendered
        tables, metrics blocks, and virtual-time results identical
        between serial and 4-way parallel execution."""
        runner.configure_observability(metrics=True, capture=True)
        parallel.configure(1)
        serial = _run_reduced_suite()
        parallel.configure(4)
        par = _run_reduced_suite()
        assert serial == par
        assert serial["clusters"] == 10  # 6 fig2 points + 4 table2


class TestCliHelpers:
    def test_parse_jobs(self):
        assert parse_jobs("3") == 3
        assert parse_jobs("auto") >= 1
        with pytest.raises(Exception):
            parse_jobs("0")
        with pytest.raises(Exception):
            parse_jobs("many")

    def test_host_record_shape(self):
        rec = host_record(jobs=4)
        assert rec["jobs"] == 4
        assert rec["cpu_count"] >= 1
        assert rec["cpus_usable"] >= 1
        assert rec["python"].count(".") == 2
