"""Telemetry contracts: zero perturbation, jobs-N byte-identity.

The ``--slo`` / ``--timeline-out`` / ``--flight-out`` pipeline is
purely observational: arming it must not move a single virtual-time
observable, and every artifact it writes must be byte-identical
between ``--jobs 1`` and ``--jobs N`` and with or without the flags
that do not feed it.
"""

import json

import pytest

from repro.bench import __main__ as cli
from repro.bench import parallel, runner
from repro.bench.runner import fresh_cluster
from repro.obs import TelemetryConfig, default_rules


@pytest.fixture
def restore_engine():
    yield
    runner.configure_observability()
    parallel.configure(1)


def put_workload(task):
    lapi = task.lapi
    n = 4096
    buf = task.memory.malloc(n)
    yield from lapi.gfence()
    if task.rank == 0:
        src = task.memory.malloc(n)
        for _ in range(6):
            yield from lapi.put(1, n, buf, src)
        yield from lapi.fence()
    yield from lapi.gfence()


class TestZeroPerturbation:
    def _run(self, telemetry):
        cluster = fresh_cluster(2, seed=0xBE1, telemetry=telemetry)
        cluster.run_job(put_workload, stacks=("lapi",))
        return cluster

    def test_armed_run_matches_disarmed_virtual_time(self,
                                                     restore_engine):
        disarmed = self._run(None)
        armed = self._run(TelemetryConfig(slo=default_rules()))
        assert armed.sim.now == disarmed.sim.now
        assert armed.sim.events_processed == \
            disarmed.sim.events_processed
        assert armed.metrics.render() == disarmed.metrics.render()
        # And the armed run actually recorded something.
        snap = armed.telemetry.snapshot()
        assert snap["timeline"]["series"]

    def test_armed_snapshot_is_deterministic(self, restore_engine):
        cfg = TelemetryConfig(slo=default_rules())
        a = self._run(cfg).telemetry.snapshot()
        b = self._run(cfg).telemetry.snapshot()
        assert a == b
        dump = lambda s: json.dumps(s, sort_keys=True)
        assert dump(a) == dump(b)


class TestCliArtifactIdentity:
    def _chaos_run(self, tmp_path, tag, jobs, slo=True):
        paths = {
            "timeline": tmp_path / f"timeline_{tag}.jsonl",
            "flight": tmp_path / f"flight_{tag}.jsonl",
            "faults": tmp_path / f"faults_{tag}.json",
        }
        argv = ["--perf-quick", "--faults-out", str(paths["faults"]),
                "--timeline-out", str(paths["timeline"]),
                "--flight-out", str(paths["flight"]),
                "--jobs", str(jobs), "chaos"]
        if slo:
            argv.insert(0, "--slo")
        assert cli.main(argv) == 0
        return {k: p.read_bytes() for k, p in paths.items()}

    def test_jobs4_artifacts_match_serial(self, restore_engine,
                                          tmp_path, capsys):
        serial = self._chaos_run(tmp_path, "serial", jobs=1)
        pooled = self._chaos_run(tmp_path, "pooled", jobs=4)
        assert pooled["timeline"] == serial["timeline"]
        assert pooled["flight"] == serial["flight"]
        assert pooled["faults"] == serial["faults"]
        # The artifacts carry real content, not empty parity.
        assert serial["timeline"].count(b"\n") > 10
        assert serial["flight"].count(b"\n") > 0

    def test_slo_alert_log_matches_across_jobs(self, restore_engine,
                                               tmp_path, capsys):
        self._chaos_run(tmp_path, "s1", jobs=1)
        out_serial = capsys.readouterr().out
        self._chaos_run(tmp_path, "s4", jobs=4)
        out_pooled = capsys.readouterr().out
        pick = lambda out: [line for line in out.splitlines()
                            if "slo:" in line or "PAGE" in line
                            or "WARN" in line or "CLEAR" in line]
        serial_alerts = pick(out_serial)
        assert serial_alerts, "expected SLO output lines"
        assert pick(out_pooled) == serial_alerts

    def test_faults_out_identical_without_telemetry_flags(
            self, restore_engine, tmp_path, capsys):
        """The chaos records are a pure function of the job args: the
        telemetry CLI flags must not change a byte of --faults-out."""
        bare = tmp_path / "faults_bare.json"
        assert cli.main(["--perf-quick", "--faults-out", str(bare),
                         "chaos"]) == 0
        armed = self._chaos_run(tmp_path, "armed", jobs=1)
        assert bare.read_bytes() == armed["faults"]
        record = json.loads(bare.read_text())
        burst = record["scenarios"]["burst"]
        assert burst["goodput_windows"]
        assert burst["detection_us"] is not None
        assert burst["recovered_us"] > burst["detection_us"]
