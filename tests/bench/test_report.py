"""Unit tests for the benchmark reporting containers."""

import pytest

from repro.bench.report import (ExperimentResult, ShapeCheck,
                                format_series, format_table)


class TestShapeCheck:
    def test_pass_rendering(self):
        c = ShapeCheck("latency ordering", True, "34 < 43")
        assert str(c) == "[PASS] latency ordering (34 < 43)"

    def test_fail_rendering(self):
        c = ShapeCheck("x", False)
        assert str(c) == "[FAIL] x"


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            experiment="tX", title="Test table",
            headers=["a", "b"], rows=[[1, 2.5], ["x", 1234.0]])

    def test_check_accumulates(self):
        r = self.make()
        r.check("one", True)
        r.check("two", False, "detail")
        assert not r.all_passed
        assert len(r.checks) == 2

    def test_all_passed(self):
        r = self.make()
        r.check("one", True)
        assert r.all_passed

    def test_render_contains_everything(self):
        r = self.make()
        r.notes.append("a note")
        r.check("claim", True, "why")
        text = r.render()
        assert "tX" in text and "Test table" in text
        assert "a note" in text
        assert "[PASS] claim" in text
        assert "1,234" in text  # thousands formatting

    def test_truthy_coercion(self):
        r = self.make()
        r.check("numpy bool", bool(1 == 1))
        assert r.checks[0].passed is True


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["col", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")
        # All rows equal width.
        assert len(set(len(ln) for ln in lines[1:])) == 1

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [12.3456], [12345.6]])
        assert "0.12" in text
        assert "12.3" in text
        assert "12,346" in text

    def test_format_series(self):
        s = format_series("lapi", [16, 64], [0.351, 1.5])
        assert s == "lapi: 16:0.35, 64:1.50"


class TestPaperReference:
    def test_table2_values(self):
        from repro.bench.paper import TABLE2
        assert TABLE2[("lapi", "polling")] == 34.0
        assert TABLE2[("mpl", "interrupt_round_trip")] == 200.0

    def test_table1_covers_all_groups(self):
        from repro.bench.paper import TABLE1_FUNCTIONS
        assert len(TABLE1_FUNCTIONS) == 8  # eight operation groups
        fns = [f for group in TABLE1_FUNCTIONS.values() for f in group]
        assert len(fns) == 14  # fourteen functions in Table 1

    def test_function_map_complete(self):
        from repro.bench.paper import TABLE1_FUNCTIONS
        from repro.bench.table1 import FUNCTION_MAP
        fns = {f for group in TABLE1_FUNCTIONS.values() for f in group}
        assert fns == set(FUNCTION_MAP)


class TestRunnerHelpers:
    def test_mean_skips_warmup(self):
        from repro.bench.runner import mean
        assert mean([100.0, 10.0, 10.0]) == 10.0
        assert mean([5.0]) == 5.0  # too short to skip

    def test_reps_for_size_monotone(self):
        from repro.bench.runner import reps_for_size
        small = reps_for_size(16)
        large = reps_for_size(2 * 1024 * 1024)
        assert small >= large
        assert large >= 3

    def test_bandwidth_units(self):
        from repro.bench.runner import bandwidth_mbs
        # 1000 bytes in 10us = 100 bytes/us = 100 MB/s.
        assert bandwidth_mbs(1000, 10.0) == 100.0

    def test_table1_experiment_passes(self):
        from repro.bench.table1 import run_table1
        result = run_table1()
        assert result.all_passed
        assert len(result.rows) == 8
