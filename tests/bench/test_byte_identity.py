"""Byte-identity of virtual-time observables across scheduling modes.

The acceptance contract of the sweep scheduler: the worker count, the
issue order (LPT vs FIFO), and the cost-cache state (cold vs warm) are
pure wall-clock optimizations -- every rendered table, ``--metrics``
block, span stream, and BENCH_PERF virtual observable is byte-identical
to the serial run.  These tests run a reduced fig2 + table2 suite under
each mode and compare every surface, then drive the real CLI in-process
and diff the JSON perf reports.
"""

import json

import pytest

from repro.bench import __main__ as cli
from repro.bench import parallel, runner
from repro.bench.bandwidth import run_fig2
from repro.bench.latency import run_table2
from repro.bench.parallel import CostModel


@pytest.fixture
def restore_engine():
    yield
    runner.configure_observability()
    parallel.configure(1)


def _surfaces():
    """Reduced fig2 + table2; every surface the guarantee covers."""
    fig2 = run_fig2(sizes=[1024, 16384])
    caps = runner.drain_captures()
    table2 = run_table2()
    caps += runner.drain_captures()
    return {
        "fig2_render": fig2.render(),
        "table2_render": table2.render(),
        "metrics": [c.metrics_block for c in caps],
        "spans": [c.spans for c in caps],
        "virtual_us": [c.now for c in caps],
        "events": [c.events for c in caps],
        "clusters": len(caps),
    }


def _run_mode(jobs, order="lpt", cost_model=None):
    runner.configure_observability(metrics=True, capture=True,
                                   spans=True)
    executor = parallel.SweepScheduler(jobs=jobs, order=order,
                                       cost_model=cost_model)
    parallel.set_executor(executor)
    try:
        return _surfaces()
    finally:
        parallel.configure(1)  # shuts the pool down


class TestSchedulingModesAreInvisible:
    def test_jobs4_matches_serial(self, restore_engine):
        assert _run_mode(1) == _run_mode(4)

    def test_fifo_matches_lpt(self, restore_engine):
        assert _run_mode(4, order="lpt") == _run_mode(4, order="fifo")

    def test_warm_cost_cache_matches_cold(self, restore_engine):
        """A populated cost model changes chunking and issue order --
        and nothing observable."""
        shared = CostModel()
        cold = _run_mode(4, cost_model=shared)
        assert shared.misses > 0
        warm = _run_mode(4, cost_model=shared)
        assert shared.hits > 0
        assert cold == warm

    def test_spans_actually_captured(self, restore_engine):
        out = _run_mode(4)
        assert any(out["spans"]), "span streams should be non-empty"


class TestCliPerfReport:
    """Drive the real CLI in-process; the virtual side of BENCH_PERF
    must not depend on --jobs, and the parallel block must always be
    present (even serially)."""

    VIRTUAL_FIELDS = ("virtual_us", "events", "clusters")

    def _perf_run(self, tmp_path, tag, jobs):
        out = tmp_path / f"perf_{tag}.json"
        rc = cli.main(["--perf", "--perf-quick",
                       "--perf-out", str(out), "fig2",
                       "--jobs", str(jobs)])
        assert rc == 0
        return json.loads(out.read_text(encoding="utf-8"))

    def test_parallel_virtuals_match_serial(
            self, restore_engine, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_COST_CACHE",
                           str(tmp_path / "costs.json"))
        serial = self._perf_run(tmp_path, "serial", jobs=1)
        par = self._perf_run(tmp_path, "par", jobs=2)
        warm = self._perf_run(tmp_path, "warm", jobs=2)
        for name, rec in serial["experiments"].items():
            for field in self.VIRTUAL_FIELDS:
                assert par["experiments"][name][field] == rec[field], \
                    (name, field)
                assert warm["experiments"][name][field] == rec[field], \
                    (name, field)
        # The warm run hit the cache the cold run populated.
        assert warm["parallel"]["cost_model"]["hits"] > 0

    def test_serial_report_has_parallel_block(
            self, restore_engine, tmp_path, capsys):
        report = self._perf_run(tmp_path, "solo", jobs=1)
        block = report["parallel"]
        assert block["jobs"] == 1
        # Inline execution books the parent process as the only
        # "worker"; nothing was forked, chunked, or stolen.
        assert list(block["workers"]) == ["w0"]
        assert block["steals"] == 0
        assert block["chunks_run"] == 0
        assert block["jobs_run"] > 0
        assert 0.0 < block["efficiency"] <= 1.0
