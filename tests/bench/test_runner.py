"""Bench harness plumbing: mean() warm-up handling and observability."""

import pytest

from repro.bench import runner


class TestMean:
    def test_empty_sequence_raises_value_error(self):
        with pytest.raises(ValueError):
            runner.mean([])

    def test_warmup_sample_is_discarded(self):
        # With exactly one measurement beyond the warm-up, the warm-up
        # must not leak into the average (the old off-by-one kept it).
        assert runner.mean([10.0, 2.0]) == 2.0
        assert runner.mean([10.0, 2.0, 4.0]) == 3.0

    def test_single_sample_survives(self):
        # Fewer samples than warm-ups: keep what we have.
        assert runner.mean([7.0]) == 7.0

    def test_skip_warmup_zero_uses_everything(self):
        assert runner.mean([1.0, 3.0], skip_warmup=0) == 2.0


class TestBandwidthMbs:
    def test_bytes_over_microseconds(self):
        assert runner.bandwidth_mbs(1000, 10.0) == 100.0

    def test_zero_elapsed_raises(self):
        # A zero-duration measurement is a bug; an inf return would
        # silently contaminate any mean() over a sweep.
        with pytest.raises(ValueError, match="non-positive elapsed"):
            runner.bandwidth_mbs(1024, 0.0)

    def test_negative_elapsed_raises(self):
        with pytest.raises(ValueError, match="non-positive elapsed"):
            runner.bandwidth_mbs(1024, -1.0)


class TestClusterCapture:
    def teardown_method(self):
        runner.configure_observability()

    def test_capture_condenses_live_cluster(self):
        runner.configure_observability(metrics=True)
        cluster = runner.fresh_cluster(nnodes=2)
        cap = runner.capture_cluster(cluster)
        assert cap.nnodes == 2
        assert cap.now == cluster.sim.now
        assert cap.events == cluster.sim.events_processed
        assert cap.metrics_block == cluster.metrics.render()
        assert cap.trace == []

    def test_metrics_block_omitted_when_disarmed(self):
        runner.configure_observability(capture=True)
        cap = runner.capture_cluster(runner.fresh_cluster(nnodes=2))
        assert cap.metrics_block is None

    def test_drain_orders_shipped_before_live(self):
        runner.configure_observability(metrics=True)
        shipped = runner.capture_cluster(runner.fresh_cluster(nnodes=2))
        runner.captured_clusters()  # reset the live list
        runner.record_captures([shipped])
        live = runner.fresh_cluster(nnodes=2)
        drained = runner.drain_captures()
        assert drained[0] is shipped
        assert drained[1].now == live.sim.now
        assert runner.drain_captures() == []

    def test_observability_kwargs_round_trip(self):
        runner.configure_observability(metrics=True, trace=True,
                                       trace_limit=99)
        kwargs = runner.observability_kwargs()
        runner.configure_observability()
        runner.configure_observability(**kwargs)
        assert runner.observability_kwargs() == kwargs
        assert kwargs["trace_limit"] == 99


class TestObservabilitySwitchboard:
    def teardown_method(self):
        runner.configure_observability()  # disarm for other tests

    def test_disarmed_by_default(self):
        cluster = runner.fresh_cluster(nnodes=2)
        assert cluster.trace is None
        assert runner.captured_clusters() == []

    def test_armed_capture_retains_clusters_with_tracers(self):
        runner.configure_observability(metrics=True, trace=True)
        a = runner.fresh_cluster(nnodes=2)
        b = runner.fresh_cluster(nnodes=2)
        assert a.trace is not None
        captured = runner.captured_clusters()
        assert captured == [a, b]
        # Draining resets the capture list.
        assert runner.captured_clusters() == []

    def test_metrics_only_capture_skips_tracer(self):
        runner.configure_observability(metrics=True)
        cluster = runner.fresh_cluster(nnodes=2)
        assert cluster.trace is None
        assert runner.captured_clusters() == [cluster]
