"""Bench harness plumbing: mean() warm-up handling and observability."""

import pytest

from repro.bench import runner


class TestMean:
    def test_empty_sequence_raises_value_error(self):
        with pytest.raises(ValueError):
            runner.mean([])

    def test_warmup_sample_is_discarded(self):
        # With exactly one measurement beyond the warm-up, the warm-up
        # must not leak into the average (the old off-by-one kept it).
        assert runner.mean([10.0, 2.0]) == 2.0
        assert runner.mean([10.0, 2.0, 4.0]) == 3.0

    def test_single_sample_survives(self):
        # Fewer samples than warm-ups: keep what we have.
        assert runner.mean([7.0]) == 7.0

    def test_skip_warmup_zero_uses_everything(self):
        assert runner.mean([1.0, 3.0], skip_warmup=0) == 2.0


class TestObservabilitySwitchboard:
    def teardown_method(self):
        runner.configure_observability()  # disarm for other tests

    def test_disarmed_by_default(self):
        cluster = runner.fresh_cluster(nnodes=2)
        assert cluster.trace is None
        assert runner.captured_clusters() == []

    def test_armed_capture_retains_clusters_with_tracers(self):
        runner.configure_observability(metrics=True, trace=True)
        a = runner.fresh_cluster(nnodes=2)
        b = runner.fresh_cluster(nnodes=2)
        assert a.trace is not None
        captured = runner.captured_clusters()
        assert captured == [a, b]
        # Draining resets the capture list.
        assert runner.captured_clusters() == []

    def test_metrics_only_capture_skips_tracer(self):
        runner.configure_observability(metrics=True)
        cluster = runner.fresh_cluster(nnodes=2)
        assert cluster.trace is None
        assert runner.captured_clusters() == [cluster]
