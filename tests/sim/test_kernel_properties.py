"""Property-based tests of discrete-event kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=60))
def test_events_fire_in_nondecreasing_time_order(delays):
    """The kernel must process timeouts in time order, ties FIFO."""
    sim = Simulator()
    fired = []
    for idx, d in enumerate(delays):
        sim.timeout(d).callbacks.append(
            lambda e, idx=idx, d=d: fired.append((d, idx)))
    sim.run()
    assert len(fired) == len(delays)
    times = [t for t, _ in fired]
    assert times == sorted(times)
    # FIFO among equal times: indices of equal-delay events stay ordered.
    for i in range(len(fired) - 1):
        if fired[i][0] == fired[i + 1][0]:
            assert fired[i][1] < fired[i + 1][1]


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e4,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=30))
def test_clock_never_goes_backwards(delays):
    sim = Simulator()
    observed = []

    def body(d):
        yield sim.timeout(d)
        observed.append(sim.now)

    for d in delays:
        sim.process(body(d))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now == max(delays)


@given(st.data())
@settings(max_examples=50)
def test_chained_processes_accumulate_delays(data):
    """A pipeline of processes each sleeping d_i finishes at sum(d_i)."""
    sim = Simulator()
    delays = data.draw(st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1, max_size=10))

    def stage(i):
        yield sim.timeout(delays[i])
        if i + 1 < len(delays):
            val = yield sim.process(stage(i + 1))
            return val + delays[i]
        return delays[i]

    proc = sim.process(stage(0))
    total = sim.run_until_complete(proc)
    assert abs(total - sum(delays)) < 1e-6
    assert abs(sim.now - sum(delays)) < 1e-6


@given(n=st.integers(min_value=1, max_value=40))
def test_all_of_fires_at_max_time(n):
    sim = Simulator()
    events = [sim.timeout(float(i % 7)) for i in range(n)]
    cond = sim.all_of(events)
    fired_at = []
    cond.callbacks.append(lambda e: fired_at.append(sim.now))
    sim.run()
    assert fired_at == [float(max(i % 7 for i in range(n)))]


@given(n=st.integers(min_value=1, max_value=40))
def test_any_of_fires_at_min_time(n):
    sim = Simulator()
    events = [sim.timeout(float((i * 3) % 11 + 1)) for i in range(n)]
    cond = sim.any_of(events)
    fired_at = []
    cond.callbacks.append(lambda e: fired_at.append(sim.now))
    sim.run()
    assert fired_at[0] == float(min((i * 3) % 11 + 1 for i in range(n)))
