"""Unit tests for repro.sim.rng and repro.sim.trace."""

from repro.sim import RngRegistry, Simulator, TraceRecord, Tracer


class TestRngRegistry:
    def test_same_key_same_stream_object(self):
        reg = RngRegistry(seed=1)
        assert reg.stream("net") is reg.stream("net")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(seed=7).stream("x").integers(0, 1 << 30, size=8)
        b = RngRegistry(seed=7).stream("x").integers(0, 1 << 30, size=8)
        assert (a == b).all()

    def test_streams_independent_of_creation_order(self):
        r1 = RngRegistry(seed=3)
        r1.stream("a")
        x1 = r1.stream("b").integers(0, 1 << 30, size=4)
        r2 = RngRegistry(seed=3)
        x2 = r2.stream("b").integers(0, 1 << 30, size=4)  # no "a" first
        assert (x1 == x2).all()

    def test_different_keys_differ(self):
        reg = RngRegistry(seed=5)
        a = reg.stream("a").integers(0, 1 << 30, size=16)
        b = reg.stream("b").integers(0, 1 << 30, size=16)
        assert (a != b).any()

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("k").integers(0, 1 << 30, size=16)
        b = RngRegistry(seed=2).stream("k").integers(0, 1 << 30, size=16)
        assert (a != b).any()

    def test_reset_restarts_streams(self):
        reg = RngRegistry(seed=9)
        first = reg.stream("s").integers(0, 1 << 30, size=4)
        reg.reset()
        again = reg.stream("s").integers(0, 1 << 30, size=4)
        assert (first == again).all()


class TestTracer:
    def test_records_accumulate(self):
        tr = Tracer()
        tr.log(1.0, "node0", "lapi", "put issued")
        tr.log(2.0, "node1", "lapi", "put delivered")
        assert len(tr) == 2
        assert tr.records[0] == TraceRecord(1.0, "node0", "lapi",
                                            "put issued")

    def test_category_filter(self):
        tr = Tracer(categories=["net"])
        tr.log(1.0, "a", "net", "pkt")
        tr.log(1.0, "a", "lapi", "ignored")
        assert len(tr) == 1
        assert tr.by_category("net")[0].message == "pkt"
        assert tr.by_category("lapi") == []

    def test_limit_suppresses(self):
        tr = Tracer(limit=2)
        for i in range(5):
            tr.log(float(i), "s", "c", str(i))
        assert len(tr) == 2
        assert tr.suppressed == 3

    def test_clear(self):
        tr = Tracer()
        tr.log(0.0, "s", "c", "m")
        tr.clear()
        assert len(tr) == 0
        assert tr.suppressed == 0

    def test_str_rendering(self):
        rec = TraceRecord(12.5, "node3", "ga", "accumulate")
        text = str(rec)
        assert "12.500" in text and "node3" in text and "accumulate" in text

    def test_kernel_hookup(self):
        tr = Tracer(categories=["event"])
        sim = Simulator(trace=tr)
        sim.timeout(1.0)
        sim.run()
        assert len(tr) == 1
