"""Unit tests for repro.sim.process and kernel/process interaction."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Interrupt, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestBasicProcesses:
    def test_process_returns_value(self, sim):
        def body():
            yield sim.timeout(1.0)
            return 99

        proc = sim.process(body())
        assert sim.run_until_complete(proc) == 99
        assert sim.now == 1.0

    def test_process_without_yield_rejected(self, sim):
        def not_a_gen():
            return 1

        with pytest.raises(SimulationError, match="generator"):
            sim.process(not_a_gen())

    def test_yield_non_event_rejected(self, sim):
        def body():
            yield "42us"

        proc = sim.process(body())
        with pytest.raises(SimulationError, match="yield Event"):
            sim.run_until_complete(proc)

    def test_yield_bare_number_sleeps(self, sim):
        # Bare int/float yields are the kernel's allocation-free sleep:
        # equivalent to ``yield sim.timeout(d)``.
        def body():
            yield 42
            yield 0.5
            return sim.now

        proc = sim.process(body())
        assert sim.run_until_complete(proc) == 42.5
        assert sim.now == 42.5

    def test_yield_foreign_event_rejected(self, sim):
        other = Simulator()

        def body():
            yield other.event()

        proc = sim.process(body())
        with pytest.raises(SimulationError, match="different simulator"):
            sim.run_until_complete(proc)

    def test_process_waits_for_manual_event(self, sim):
        ev = sim.event()

        def waiter():
            val = yield ev
            return val

        def firer():
            yield sim.timeout(3.0)
            ev.succeed("ping")

        w = sim.process(waiter())
        sim.process(firer())
        assert sim.run_until_complete(w) == "ping"
        assert sim.now == 3.0

    def test_process_is_waitable_event(self, sim):
        def inner():
            yield sim.timeout(2.0)
            return "inner-done"

        def outer():
            val = yield sim.process(inner())
            return val + "!"

        proc = sim.process(outer())
        assert sim.run_until_complete(proc) == "inner-done!"

    def test_yield_from_composition(self, sim):
        def sub(n):
            yield sim.timeout(n)
            return n * 2

        def main():
            a = yield from sub(1.0)
            b = yield from sub(2.0)
            return a + b

        proc = sim.process(main())
        assert sim.run_until_complete(proc) == 6.0
        assert sim.now == 3.0

    def test_already_processed_event_resumes_immediately(self, sim):
        ev = sim.event()
        ev.succeed("early")

        def body():
            yield sim.timeout(1.0)  # let ev get processed first
            val = yield ev
            return val

        proc = sim.process(body())
        assert sim.run_until_complete(proc) == "early"


class TestFailures:
    def test_exception_in_process_propagates(self, sim):
        def body():
            yield sim.timeout(1.0)
            raise ValueError("inside")

        proc = sim.process(body())
        with pytest.raises(ValueError, match="inside"):
            sim.run_until_complete(proc)

    def test_unwatched_crashing_process_crashes_run(self, sim):
        def body():
            yield sim.timeout(1.0)
            raise ValueError("unwatched")

        sim.process(body())
        with pytest.raises(ValueError, match="unwatched"):
            sim.run()

    def test_failed_event_thrown_into_waiter(self, sim):
        ev = sim.event()

        def waiter():
            try:
                yield ev
            except RuntimeError as exc:
                return f"caught {exc}"

        def firer():
            yield sim.timeout(1.0)
            ev.fail(RuntimeError("bad"))

        w = sim.process(waiter())
        sim.process(firer())
        assert sim.run_until_complete(w) == "caught bad"

    def test_watched_process_failure_delivered_to_watcher(self, sim):
        def crasher():
            yield sim.timeout(1.0)
            raise KeyError("k")

        def watcher():
            try:
                yield sim.process(crasher())
            except KeyError:
                return "observed"

        w = sim.process(watcher())
        assert sim.run_until_complete(w) == "observed"


class TestInterrupt:
    def test_interrupt_wakes_blocked_process(self, sim):
        def body():
            try:
                yield sim.timeout(100.0)
            except Interrupt as irq:
                return ("interrupted", irq.cause, sim.now)

        proc = sim.process(body())

        def interrupter():
            yield sim.timeout(2.0)
            proc.interrupt("why")

        sim.process(interrupter())
        assert sim.run_until_complete(proc) == ("interrupted", "why", 2.0)

    def test_interrupt_dead_process_raises(self, sim):
        def body():
            yield sim.timeout(1.0)

        proc = sim.process(body())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_interrupted_process_can_rewait(self, sim):
        ev = sim.event()

        def body():
            try:
                yield ev
            except Interrupt:
                pass
            val = yield ev  # wait again after interruption
            return val

        proc = sim.process(body())

        def driver():
            yield sim.timeout(1.0)
            proc.interrupt()
            yield sim.timeout(1.0)
            ev.succeed("finally")

        sim.process(driver())
        assert sim.run_until_complete(proc) == "finally"


class TestKernel:
    def test_run_until_time(self, sim):
        sim.timeout(10.0)
        assert sim.run(until=4.0) == 4.0
        assert sim.now == 4.0

    def test_run_empty_queue_extends_clock_to_until(self, sim):
        assert sim.run(until=7.5) == 7.5

    def test_step_on_empty_queue_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_max_events_guard(self, sim):
        def forever():
            while True:
                yield sim.timeout(1.0)

        sim.process(forever())
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=50)

    def test_deadlock_detection(self, sim):
        def stuck():
            yield sim.event()  # nobody will ever fire this

        proc = sim.process(stuck())
        with pytest.raises(DeadlockError, match="stuck"):
            sim.run_until_complete(proc)

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(3.0)
        sim.run(until=0.0)  # process the boot-less timeout scheduling
        assert sim.peek() == 3.0

    def test_events_processed_counter(self, sim):
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run()
        assert sim.events_processed == 2

    def test_active_process_visible_inside_body(self, sim):
        seen = []

        def body():
            seen.append(sim.active_process)
            yield sim.timeout(0.0)
            seen.append(sim.active_process)

        proc = sim.process(body())
        sim.run()
        assert seen == [proc, proc]
        assert sim.active_process is None

    def test_schedule_in_past_rejected(self, sim):
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim._schedule_at(1.0, sim.event())
