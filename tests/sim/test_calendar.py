"""CalendarQueue reference implementation: ordering and edge cases.

The kernel inlines the calendar's push/pop field-for-field, so these
tests drive the *reference* methods directly -- including a randomized
cross-validation against a plain heapq, which is the ordering oracle
the golden scheduler-equivalence tests extend end-to-end.
"""

import heapq
import random

import pytest

from repro.sim.calendar import DEFAULT_BUCKET_WIDTH, CalendarQueue


def drain(q):
    out = []
    while q:
        out.append(q.pop())
    return out


class TestBasics:
    def test_empty(self):
        q = CalendarQueue()
        assert len(q) == 0
        assert not q
        assert q.peek_when() == float("inf")
        with pytest.raises(IndexError):
            q.pop()

    def test_invalid_width_rejected(self):
        for width in (0.0, -1.0, float("nan")):
            with pytest.raises(ValueError):
                CalendarQueue(bucket_width=width)

    def test_single_entry(self):
        q = CalendarQueue()
        q.push(5.0, 1, "a", now=0.0)
        assert len(q) == 1
        assert q.peek_when() == 5.0
        assert q.pop() == (5.0, 1, "a")
        assert not q

    def test_sorted_across_buckets(self):
        q = CalendarQueue(bucket_width=1.0)
        times = [7.5, 0.25, 3.0, 12.0, 0.75, 3.5]
        for seq, when in enumerate(times):
            q.push(when, seq, f"i{seq}", now=0.0)
        popped = [e[0] for e in drain(q)]
        assert popped == sorted(times)

    def test_fifo_within_equal_times(self):
        q = CalendarQueue()
        for seq in range(10):
            q.push(4.0, seq, seq, now=0.0)
        assert [e[2] for e in drain(q)] == list(range(10))


class TestNowLane:
    def test_now_pushes_preserve_fifo(self):
        q = CalendarQueue()
        for seq in range(5):
            q.push(2.0, seq, seq, now=2.0)
        out = drain(q)
        assert [e[2] for e in out] == [0, 1, 2, 3, 4]
        # Lane pops report when == the lane stamp and seq None.
        assert all(e[0] == 2.0 and e[1] is None for e in out)

    def test_bucketed_entries_at_lane_time_drain_first(self):
        # An entry scheduled earlier *for* time t must come out before
        # entries pushed *at* time t (it has the smaller seq).
        q = CalendarQueue()
        q.push(3.0, 1, "scheduled", now=0.0)
        q.push(3.0, 2, "immediate", now=3.0)
        assert q.pop()[2] == "scheduled"
        assert q.pop()[2] == "immediate"

    def test_future_entry_does_not_block_lane(self):
        q = CalendarQueue()
        q.push(9.0, 1, "later", now=0.0)
        q.push(1.0, 2, "now", now=1.0)
        assert q.peek_when() == 1.0
        assert q.pop()[2] == "now"
        assert q.pop()[2] == "later"


class TestEarlierDayPreemption:
    def test_push_before_active_day(self):
        # Activate a day by popping from it, then push into an earlier
        # day: the earlier entry must come out next.
        q = CalendarQueue(bucket_width=1.0)
        q.push(10.2, 1, "a", now=0.0)
        q.push(10.4, 2, "b", now=0.0)
        assert q.pop()[2] == "a"  # day 10 is now active, pos=1
        q.push(3.5, 3, "early", now=0.0)
        assert q.pop()[2] == "early"
        assert q.pop()[2] == "b"  # consumed prefix was compacted

    def test_interleaved_push_pop_keeps_order(self):
        q = CalendarQueue(bucket_width=2.0)
        q.push(8.0, 1, 1, now=0.0)
        q.push(9.0, 2, 2, now=0.0)
        assert q.pop()[2] == 1
        q.push(8.5, 3, 3, now=8.0)   # into the active day, after pos
        q.push(2.0, 4, 4, now=0.0)   # earlier day preempts
        assert [e[2] for e in drain(q)] == [4, 3, 2]


class TestRandomizedOracle:
    @pytest.mark.parametrize("width", [0.5, DEFAULT_BUCKET_WIDTH, 64.0])
    def test_matches_heapq(self, width):
        """Interleaved pushes and pops against the heapq oracle.

        Mirrors how the kernel drives the queue: time only moves
        forward (to the `when` of the last pop), and a fraction of
        pushes land exactly at `now` (the same-instant lane).
        """
        rng = random.Random(0xCA1)
        q = CalendarQueue(bucket_width=width)
        oracle = []
        seq = 0
        now = 0.0
        popped_q = []
        popped_o = []
        for _ in range(3000):
            if oracle and rng.random() < 0.45:
                got = q.pop()
                want = heapq.heappop(oracle)
                popped_q.append((got[0], got[2]))
                popped_o.append((want[0], want[2]))
                now = max(now, want[0])
            else:
                r = rng.random()
                when = now if r < 0.35 else now + rng.random() * 40.0
                seq += 1
                q.push(when, seq, seq, now=now)
                heapq.heappush(oracle, (when, seq, seq))
        while oracle:
            got = q.pop()
            want = heapq.heappop(oracle)
            popped_q.append((got[0], got[2]))
            popped_o.append((want[0], want[2]))
        assert not q
        assert popped_q == popped_o
