"""Unit tests for repro.sim.sync primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Semaphore, SimLock, Simulator, WaitSet


@pytest.fixture
def sim():
    return Simulator()


class TestSimLock:
    def test_uncontended_acquire_is_immediate(self, sim):
        lock = SimLock(sim)
        ev = lock.acquire(owner="a")
        assert ev.triggered
        assert lock.locked
        assert lock.owner == "a"

    def test_release_hands_to_waiter(self, sim):
        lock = SimLock(sim)
        lock.acquire(owner="a")
        ev_b = lock.acquire(owner="b")
        assert not ev_b.triggered
        lock.release()
        assert ev_b.triggered
        assert lock.owner == "b"

    def test_release_unlocked_raises(self, sim):
        lock = SimLock(sim)
        with pytest.raises(SimulationError):
            lock.release()

    def test_priority_order(self, sim):
        lock = SimLock(sim)
        lock.acquire(owner="holder")
        low = lock.acquire(owner="low", priority=10)
        high = lock.acquire(owner="high", priority=0)
        lock.release()
        assert high.triggered and not low.triggered
        assert lock.owner == "high"
        lock.release()
        assert low.triggered
        assert lock.owner == "low"

    def test_fifo_within_priority(self, sim):
        lock = SimLock(sim)
        lock.acquire(owner=0)
        waits = [lock.acquire(owner=i) for i in (1, 2, 3)]
        for expect in (1, 2, 3):
            lock.release()
            assert lock.owner == expect
        assert all(w.triggered for w in waits)

    def test_full_release_frees(self, sim):
        lock = SimLock(sim)
        lock.acquire()
        lock.release()
        assert not lock.locked
        assert lock.owner is None

    def test_lock_with_processes(self, sim):
        lock = SimLock(sim, "m")
        log = []

        def worker(name, hold):
            yield lock.acquire(owner=name)
            log.append((sim.now, name, "got"))
            yield sim.timeout(hold)
            lock.release()

        sim.process(worker("a", 5.0))
        sim.process(worker("b", 5.0))
        sim.run()
        assert log == [(0.0, "a", "got"), (5.0, "b", "got")]


class TestSemaphore:
    def test_initial_value(self, sim):
        sem = Semaphore(sim, value=2)
        assert sem.value == 2
        assert sem.wait().triggered
        assert sem.wait().triggered
        assert not sem.wait().triggered

    def test_negative_initial_rejected(self, sim):
        with pytest.raises(SimulationError):
            Semaphore(sim, value=-1)

    def test_post_wakes_fifo(self, sim):
        sem = Semaphore(sim)
        w1, w2 = sem.wait(), sem.wait()
        sem.post()
        assert w1.triggered and not w2.triggered
        sem.post()
        assert w2.triggered

    def test_post_count(self, sim):
        sem = Semaphore(sim)
        waits = [sem.wait() for _ in range(3)]
        sem.post(count=2)
        assert [w.triggered for w in waits] == [True, True, False]
        assert sem.value == 0

    def test_post_surplus_accumulates(self, sim):
        sem = Semaphore(sim)
        sem.post(count=3)
        assert sem.value == 3

    def test_bad_post_count(self, sim):
        sem = Semaphore(sim)
        with pytest.raises(SimulationError):
            sem.post(count=0)

    def test_try_wait(self, sim):
        sem = Semaphore(sim, value=1)
        assert sem.try_wait()
        assert not sem.try_wait()


class TestWaitSet:
    def test_notify_all_wakes_everyone(self, sim):
        ws = WaitSet(sim)
        waits = [ws.wait() for _ in range(4)]
        assert len(ws) == 4
        woken = ws.notify_all("v")
        assert woken == 4
        assert all(w.triggered and w.value == "v" for w in waits)
        assert len(ws) == 0

    def test_notify_with_no_waiters(self, sim):
        ws = WaitSet(sim)
        assert ws.notify_all() == 0

    def test_waits_after_notify_need_new_notify(self, sim):
        ws = WaitSet(sim)
        ws.notify_all()
        w = ws.wait()
        assert not w.triggered
        ws.notify_all()
        assert w.triggered
