"""Unit tests for repro.sim.channel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Channel, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestChannelBasics:
    def test_put_then_get(self, sim):
        ch = Channel(sim)
        ch.put("a")
        ev = ch.get()
        assert ev.triggered
        assert ev.value == "a"

    def test_get_blocks_until_put(self, sim):
        ch = Channel(sim)
        ev = ch.get()
        assert not ev.triggered
        ch.put("late")
        assert ev.triggered
        assert ev.value == "late"

    def test_fifo_order(self, sim):
        ch = Channel(sim)
        for i in range(5):
            ch.put(i)
        got = [ch.get().value for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_multiple_getters_fifo(self, sim):
        ch = Channel(sim)
        g1, g2 = ch.get(), ch.get()
        ch.put("x")
        ch.put("y")
        assert (g1.value, g2.value) == ("x", "y")

    def test_try_get(self, sim):
        ch = Channel(sim)
        ok, item = ch.try_get()
        assert not ok and item is None
        ch.put(1)
        ok, item = ch.try_get()
        assert ok and item == 1

    def test_peek_and_len(self, sim):
        ch = Channel(sim)
        with pytest.raises(SimulationError):
            ch.peek()
        ch.put("head")
        ch.put("tail")
        assert ch.peek() == "head"
        assert len(ch) == 2

    def test_drain(self, sim):
        ch = Channel(sim)
        for i in range(3):
            ch.put(i)
        assert ch.drain() == [0, 1, 2]
        assert ch.empty


class TestBoundedChannel:
    def test_capacity_validation(self, sim):
        with pytest.raises(SimulationError):
            Channel(sim, capacity=0)

    def test_overflow_raises_by_default(self, sim):
        ch = Channel(sim, capacity=1)
        ch.put(1)
        assert ch.full
        with pytest.raises(SimulationError, match="overflow"):
            ch.put(2)

    def test_overflow_drops_when_configured(self, sim):
        dropped = []
        ch = Channel(sim, capacity=2, drop_on_overflow=True)
        ch.on_drop = dropped.append
        assert ch.put(1)
        assert ch.put(2)
        assert not ch.put(3)
        assert dropped == [3]
        assert ch.dropped == 1
        assert ch.total_put == 2

    def test_waiting_getter_bypasses_capacity(self, sim):
        ch = Channel(sim, capacity=1)
        ch.put("fill")
        g = None
        # Consume then wait: the direct hand-off path must not count
        # against capacity.
        assert ch.get().value == "fill"
        g = ch.get()
        ch.put("direct")
        assert g.value == "direct"

    def test_on_put_hook(self, sim):
        seen = []
        ch = Channel(sim)
        ch.on_put = seen.append
        ch.put("a")
        assert ch.get().value == "a"
        g = ch.get()  # now waiting on an empty channel
        ch.put("b")  # direct hand-off also reports via on_put
        assert seen == ["a", "b"]
        assert g.value == "b"


class TestChannelWithProcesses:
    def test_producer_consumer(self, sim):
        ch = Channel(sim, "pc")
        received = []

        def producer():
            for i in range(4):
                yield sim.timeout(1.0)
                ch.put(i)

        def consumer():
            for _ in range(4):
                item = yield ch.get()
                received.append((sim.now, item))

        sim.process(producer())
        cons = sim.process(consumer())
        sim.run_until_complete(cons)
        assert received == [(1.0, 0), (2.0, 1), (3.0, 2), (4.0, 3)]
