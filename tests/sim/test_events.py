"""Unit tests for repro.sim.events."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Event, Simulator, Timeout


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_fresh_event_is_untriggered(self, sim):
        ev = sim.event("e")
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_succeed_carries_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_succeed_twice_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_then_succeed_raises(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_callbacks_run_on_processing(self, sim):
        ev = sim.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(e.value))
        ev.succeed("x")
        assert seen == []  # not yet processed
        sim.run()
        assert seen == ["x"]
        assert ev.processed

    def test_failed_event_with_no_listener_raises_in_run(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("lost"))
        with pytest.raises(RuntimeError, match="lost"):
            sim.run()


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        sim.timeout(5.0)
        assert sim.run() == 5.0

    def test_timeout_value(self, sim):
        t = sim.timeout(1.0, value="done")
        sim.run()
        assert t.value == "done"

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_zero_delay_fires_at_now(self, sim):
        t = sim.timeout(0.0)
        sim.run()
        assert t.processed
        assert sim.now == 0.0

    def test_timeouts_fire_in_order(self, sim):
        order = []
        for d in (3.0, 1.0, 2.0):
            sim.timeout(d).callbacks.append(
                lambda e, d=d: order.append(d))
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_equal_times_fifo(self, sim):
        order = []
        for i in range(5):
            sim.timeout(1.0).callbacks.append(
                lambda e, i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestConditions:
    def test_anyof_fires_on_first(self, sim):
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(2.0, value="b")
        cond = AnyOf(sim, [a, b])
        results = []
        cond.callbacks.append(lambda e: results.append(e.value))
        sim.run()
        (val,) = results
        assert a in val
        assert val[a] == "a"

    def test_allof_waits_for_all(self, sim):
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(2.0, value="b")
        cond = AllOf(sim, [a, b])
        fired_at = []
        cond.callbacks.append(lambda e: fired_at.append(sim.now))
        sim.run()
        assert fired_at == [2.0]
        assert cond.value.todict() == {a: "a", b: "b"}

    def test_empty_allof_is_trivially_true(self, sim):
        cond = AllOf(sim, [])
        sim.run()
        assert cond.triggered
        assert len(cond.value) == 0

    def test_empty_anyof_rejected(self, sim):
        with pytest.raises(SimulationError):
            AnyOf(sim, [])

    def test_condition_over_already_triggered(self, sim):
        a = sim.event()
        a.succeed(7)
        cond = AnyOf(sim, [a])
        sim.run()
        assert cond.triggered
        assert cond.value[a] == 7

    def test_operator_sugar(self, sim):
        a = sim.timeout(1.0)
        b = sim.timeout(2.0)
        both = a & b
        either = a | b
        sim.run()
        assert both.triggered
        assert either.triggered

    def test_cross_simulator_mix_rejected(self, sim):
        other = Simulator()
        a = sim.event()
        b = other.event()
        with pytest.raises(SimulationError):
            AnyOf(sim, [a, b])

    def test_condition_value_mapping_protocol(self, sim):
        a = sim.timeout(0.0, value=1)
        b = sim.timeout(0.0, value=2)
        cond = AllOf(sim, [a, b])
        sim.run()
        val = cond.value
        assert len(val) == 2
        assert list(val) == [a, b]
        assert a in val and b in val
        with pytest.raises(KeyError):
            _ = val[sim.event()]
