"""Hot-path trace gating: suppressed records must cost nothing."""

from repro.sim import Tracer


class _CountingRepr:
    """Object whose ``repr`` counts (and can flag) each invocation."""

    def __init__(self):
        self.reprs = 0

    def __repr__(self):
        self.reprs += 1
        return "<counted>"


class TestKernelEventGating:
    def test_filtered_category_skips_repr(self):
        tracer = Tracer(categories=["tx"])  # "event" filtered out
        ev = _CountingRepr()
        tracer.kernel_event(1.0, ev)
        assert ev.reprs == 0
        assert len(tracer) == 0

    def test_cap_reached_skips_repr_and_counts_suppressed(self):
        tracer = Tracer(limit=0)
        ev = _CountingRepr()
        tracer.kernel_event(1.0, ev)
        assert ev.reprs == 0
        assert tracer.suppressed == 1

    def test_wanted_event_still_formats(self):
        tracer = Tracer()
        ev = _CountingRepr()
        tracer.kernel_event(2.0, ev)
        assert ev.reprs == 1
        assert len(tracer) == 1
        assert tracer.records[0].message == "<counted>"


class TestWants:
    def test_wants_respects_filter_and_cap(self):
        tracer = Tracer(categories=["tx"], limit=1)
        assert tracer.wants("tx")
        assert not tracer.wants("rx")
        tracer.log(0.0, "n", "tx", "one")
        assert not tracer.wants("tx")  # cap reached

    def test_log_fields_carried_on_record(self):
        tracer = Tracer()
        tracer.log(0.5, "node0", "tx", "inject", uid=7, bytes=1024)
        rec = tracer.records[0]
        assert rec.fields == {"uid": 7, "bytes": 1024}
        assert "uid=7" in str(rec)
