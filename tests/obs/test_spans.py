"""Causal span tracing: recorder primitives, decomposition, Chrome
export, and the two observability invariants.

The invariants the tentpole stands on:

1. *Zero perturbation* -- arming a :class:`SpanRecorder` cannot change
   any virtual-time number; a cluster runs to the identical ``sim.now``
   with spans on or off.
2. *Determinism* -- identical seeds produce byte-identical span
   streams, serially and through the parallel sweep engine.
"""

import gzip
import json

import pytest

from repro.bench import parallel, runner
from repro.bench.latency import lapi_pingpong_job
from repro.machine import Cluster
from repro.machine.packet import Packet
from repro.obs import (MANDATORY_PHASES, PHASE_ORDER, SPAN_SCHEMA_KEYS,
                       SpanRecorder, bucket_of, chrome_trace_events,
                       critical_path, decompose, percentile,
                       render_critical_path, render_decomposition,
                       span_to_dict, write_chrome_trace)


def _pkt(uid=0, src=0, dst=1, proto="lapi", kind="data", nbytes=64):
    return Packet(src=src, dst=dst, proto=proto, kind=kind,
                  header_bytes=16, payload=b"\0" * nbytes, uid=uid)


class TestSpanRecorder:
    def test_open_close_records_interval(self):
        sp = SpanRecorder()
        sid = sp.open(0, "lapi", "put", 1.0, dst=1, bytes=64)
        assert len(sp) == 0  # still open
        sp.close(sid, 5.0, packets=1)
        (span,) = sp.records
        assert (span.t0, span.t1) == (1.0, 5.0)
        assert span.phase == "op"
        assert span.fields == {"dst": 1, "bytes": 64, "packets": 1}

    def test_close_unknown_sid_is_noop(self):
        sp = SpanRecorder()
        sp.close(999, 1.0)
        assert len(sp) == 0

    def test_emit_and_sid_monotonic(self):
        sp = SpanRecorder()
        a = sp.emit(0, "lapi", "put", "call", 0.0, 9.0)
        b = sp.open(0, "lapi", "put", 9.0)
        assert b == a + 1

    def test_drain_orders_by_t0_then_sid(self):
        sp = SpanRecorder()
        sp.emit(0, "x", "a", "op", 5.0, 6.0)
        sp.emit(0, "x", "b", "op", 1.0, 2.0)
        sp.emit(0, "x", "c", "op", 1.0, 3.0)
        assert [s.op for s in sp.drain()] == ["b", "c", "a"]

    def test_limit_suppresses_visibly(self):
        sp = SpanRecorder(limit=2)
        for i in range(5):
            sp.emit(0, "x", "a", "op", float(i), float(i))
        assert len(sp) == 2
        assert sp.suppressed == 3

    def test_span_dict_schema(self):
        sp = SpanRecorder()
        sp.emit(0, "lapi", "put", "wire", 1.0, 2.5, flow=7, uid=7)
        (d,) = sp.span_dicts()
        assert tuple(d) == SPAN_SCHEMA_KEYS
        assert d["dur_us"] == 1.5
        assert d["flow"] == 7
        assert d["fields"] == {"uid": 7}


class TestPacketHooks:
    def test_bound_packet_full_lifecycle(self):
        sp = SpanRecorder()
        pkt = _pkt(uid=3)
        parent = sp.open(0, "lapi", "put", 0.0)
        sp.bind_packets([pkt], parent, "put", 64,
                        msg_key=("lapi", 0, 0))
        sp.packet_submitted(pkt, 1.0)
        sp.packet_tx_done(pkt, 2.0)
        sp.packet_delivered(pkt, 3.0)
        sp.packet_enqueued(pkt, 3.5)
        sp.packet_dispatched(pkt, 4.0)
        phases = [(s.phase, s.t0, s.t1, s.node) for s in sp.records]
        assert phases == [("tx", 1.0, 2.0, 0), ("wire", 2.0, 3.0, 0),
                          ("rx_dma", 3.0, 3.5, 1),
                          ("dispatch", 3.5, 4.0, 1)]
        assert all(s.parent == parent for s in sp.records)
        assert all(s.op == "put" for s in sp.records)
        wire = sp.records[1]
        assert wire.flow == 3  # pairs with rx_dma in the Chrome trace
        assert sp.records[2].flow == 3
        assert sp.message_origin(("lapi", 0, 0)) == parent
        assert sp.message_bytes(("lapi", 0, 0)) == 64
        assert sp.origin_of(pkt) == parent
        assert sp.origin_of_uid(3) == parent
        assert sp.origin_of_uid(None) is None

    def test_unbound_packet_still_tracked(self):
        sp = SpanRecorder()
        ack = _pkt(uid=9, kind="ack", nbytes=0)
        sp.packet_submitted(ack, 1.0)
        sp.packet_tx_done(ack, 2.0)
        (span,) = sp.records
        assert span.op == "ack"  # falls back to the packet kind
        assert span.parent is None

    def test_lost_packet_emits_terminal_wire_span(self):
        sp = SpanRecorder()
        pkt = _pkt(uid=4)
        sp.packet_submitted(pkt, 0.0)
        sp.packet_tx_done(pkt, 1.0)
        sp.packet_lost(pkt, 2.0)
        lost = sp.records[-1]
        assert lost.phase == "wire"
        assert lost.fields["lost"] is True
        assert lost.flow is None  # no arrow to a delivery that never was


class TestDecomposition:
    def test_bucket_of(self):
        assert bucket_of(None) == "ctrl"
        assert bucket_of(0) == "0B"
        assert bucket_of(256) == "<=256B"
        assert bucket_of(257) == "<=4KB"
        assert bucket_of(1 << 20) == "<=1MB"
        assert bucket_of((1 << 20) + 1) == ">1MB"

    def test_percentile_nearest_rank(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert percentile(vals, 0.50) == 2.0
        assert percentile(vals, 0.99) == 4.0
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def _spans(self):
        sp = SpanRecorder()
        for i in range(4):
            sp.emit(0, "lapi", "put", "call", 0.0, 9.0, bytes=64)
            sp.emit(0, "lapi", "put", "tx", 9.0, 10.0 + i, bytes=64)
        sp.emit(0, "lapi", "put", "tx", 0.0, 2.0)  # control bucket
        return sp.span_dicts()

    def test_decompose_stats(self):
        stats = decompose(self._spans())
        call = stats["lapi"]["call"]["all"]
        assert call["count"] == 4
        assert call["mean_us"] == 9.0
        tx = stats["lapi"]["tx"]
        assert tx["all"]["count"] == 5
        assert set(tx["buckets"]) == {"<=256B", "ctrl"}

    def test_render_prints_mandatory_phases_with_dashes(self):
        text = render_decomposition(self._spans(), "unit")
        assert text.startswith("-- phase decomposition: unit --")
        for phase in MANDATORY_PHASES:
            assert f"\n  {phase:<14}" in text
        # Unobserved mandatory phases print a zero-count dash row.
        assert f"  {'hdr_handler':<14} {0:>7} {'-':>10}" in text

    def test_render_empty(self):
        assert "(no spans recorded)" in render_decomposition([], "x")

    def test_phase_order_is_table1_first(self):
        assert PHASE_ORDER[:7] == ["call", "tx", "wire", "rx_dma",
                                   "dispatch", "hdr_handler",
                                   "cmpl_handler"]


class TestCriticalPath:
    def _epoch_spans(self):
        sp = SpanRecorder()
        # Epoch 0: node 1 exits last; dispatch dominates its window.
        for node, t1 in [(0, 10.0), (1, 14.0)]:
            sp.emit(node, "lapi", "gfence", "op", 0.0, t1, epoch=0)
        sp.emit(1, "lapi", "put", "dispatch", 2.0, 9.0)
        sp.emit(1, "lapi", "put", "tx", 0.5, 1.5)
        sp.emit(0, "lapi", "put", "dispatch", 2.0, 9.5)  # not the gate
        return sp.span_dicts()

    def test_gate_node_and_phase(self):
        (row,) = critical_path(self._epoch_spans())
        assert row["epoch"] == 0
        assert row["nodes"] == 2
        assert row["gate_node"] == 1
        assert row["duration_us"] == 14.0
        assert row["gate_phase"] == "dispatch"
        assert row["gate_phase_us"] == 7.0

    def test_idle_gate(self):
        sp = SpanRecorder()
        sp.emit(0, "lapi", "gfence", "op", 0.0, 5.0, epoch=3)
        (row,) = critical_path(sp.span_dicts())
        assert row["gate_phase"] == "idle"

    def test_render_empty_without_epochs(self):
        assert render_critical_path([]) == ""

    def test_render_has_header(self):
        text = render_critical_path(self._epoch_spans())
        assert "critical path (gfence epochs):" in text


class TestChromeTrace:
    def _stream(self):
        sp = SpanRecorder()
        parent = sp.open(0, "lapi", "put", 0.0)
        pkt = _pkt(uid=5)
        sp.bind_packets([pkt], parent, "put", 64)
        sp.packet_submitted(pkt, 1.0)
        sp.packet_tx_done(pkt, 2.0)
        sp.packet_delivered(pkt, 3.0)
        sp.packet_enqueued(pkt, 3.5)
        sp.close(parent, 4.0)
        return sp.span_dicts()

    def test_flow_events_pair_wire_to_rx_dma(self):
        events = chrome_trace_events([self._stream()])
        starts = [e for e in events if e["ph"] == "s"]
        ends = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(ends) == 1
        assert starts[0]["id"] == ends[0]["id"]
        assert starts[0]["pid"] == 0   # source node
        assert ends[0]["pid"] == 1     # destination node
        assert starts[0]["ts"] == 3.0  # end of the wire span
        assert ends[0]["ts"] == 3.0    # start of the rx_dma span

    def test_lanes_never_overlap(self):
        sp = SpanRecorder()
        sp.emit(0, "x", "a", "op", 0.0, 10.0)
        sp.emit(0, "x", "b", "op", 2.0, 4.0)   # overlaps a -> new lane
        sp.emit(0, "x", "c", "op", 5.0, 6.0)   # fits lane 1 again
        events = [e for e in chrome_trace_events([sp.span_dicts()])
                  if e["ph"] == "X"]
        by_lane = {}
        for e in events:
            by_lane.setdefault(e["tid"], []).append(
                (e["ts"], e["ts"] + e["dur"]))
        for intervals in by_lane.values():
            intervals.sort()
            for (_, e0), (s1, _) in zip(intervals, intervals[1:]):
                assert s1 >= e0

    def test_cluster_pid_and_flow_namespacing(self):
        events = chrome_trace_events([self._stream(), self._stream()])
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert pids == {0, 1, 100, 101}
        fids = {e["id"] for e in events if e["ph"] == "s"}
        assert len(fids) == 2  # same uid, distinct per-cluster flow ids

    def test_process_metadata_present(self):
        events = chrome_trace_events([self._stream()])
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {"cluster0/node0", "cluster0/node1"}

    def test_write_plain_and_gz_round_trip(self, tmp_path):
        stream = self._stream()
        plain = tmp_path / "t.json"
        gzed = tmp_path / "t.json.gz"
        n1 = write_chrome_trace([stream], plain)
        n2 = write_chrome_trace([stream], gzed)
        assert n1 == n2
        doc = json.loads(plain.read_text())
        gzdoc = json.loads(gzip.decompress(gzed.read_bytes()))
        assert doc == gzdoc
        assert len(doc["traceEvents"]) == n1

    def test_gz_output_is_byte_deterministic(self, tmp_path):
        stream = self._stream()
        a, b = tmp_path / "a.gz", tmp_path / "b.gz"
        write_chrome_trace([stream], a)
        write_chrome_trace([stream], b)
        assert a.read_bytes() == b.read_bytes()


def _put_job(spans):
    """One 2-node LAPI put/gfence cluster; returns (cluster, recorder)."""

    def main(task):
        lapi = task.lapi
        buf = task.memory.malloc(256)
        tgt = lapi.counter()
        yield from lapi.gfence()
        if task.rank == 0:
            src = task.memory.malloc(256)
            yield from lapi.put(1, 256, buf, src, tgt_cntr=tgt.id)
            yield from lapi.fence()
        else:
            yield from lapi.waitcntr(tgt, 1)
        yield from lapi.gfence()

    cluster = Cluster(nnodes=2, spans=spans)
    cluster.run_job(main, stacks=("lapi",))
    return cluster


class TestClusterIntegration:
    def test_real_cluster_produces_causal_spans(self):
        sp = SpanRecorder()
        _put_job(sp)
        dicts = sp.span_dicts()
        assert dicts, "a put/gfence job must produce spans"
        phases = {d["phase"] for d in dicts}
        assert {"call", "tx", "wire", "rx_dma", "dispatch",
                "counter_update", "op"} <= phases
        sids = {d["sid"] for d in dicts}
        op = next(d for d in dicts
                  if d["op"] == "put" and d["phase"] == "op")
        children = [d for d in dicts if d["parent"] == op["sid"]]
        assert children, "packet phases must parent to the put op span"
        # Every parent edge resolves (closed spans only, so the op
        # spans the children point to are all present).
        for d in dicts:
            if d["parent"] is not None:
                assert d["parent"] in sids

    def test_identical_seeds_identical_span_streams(self):
        a, b = SpanRecorder(), SpanRecorder()
        _put_job(a)
        _put_job(b)
        assert a.span_dicts() == b.span_dicts()

    def test_spans_do_not_perturb_virtual_time(self):
        bare = _put_job(None)
        sp = SpanRecorder()
        traced = _put_job(sp)
        assert traced.sim.now == bare.sim.now
        assert (traced.sim.events_processed
                == bare.sim.events_processed)
        assert len(sp) > 0


def _pingpong_job():
    return lapi_pingpong_job(interrupt_mode=False)


@pytest.fixture
def restore_engine():
    yield
    runner.configure_observability()
    parallel.configure(1)


class TestParallelParity:
    def test_jobs1_and_jobs4_span_streams_identical(self,
                                                    restore_engine):
        """Worker-shipped span dicts equal the serial in-process ones
        (uids and sids restart per cluster, so shard order is moot)."""
        specs = [parallel.JobSpec(_pingpong_job, key=("sp", i))
                 for i in range(3)]

        runner.configure_observability(spans=True, capture=True)
        parallel.configure(1)
        serial_values = parallel.sweep(specs)
        serial = [c.spans for c in runner.drain_captures()]

        parallel.configure(4)
        par_values = parallel.sweep(specs)
        par = [c.spans for c in runner.drain_captures()]

        assert par_values == serial_values
        assert len(serial) == len(par) == 3
        assert serial[0], "expected spans from the pingpong job"
        assert serial[0] == serial[1] == serial[2]
        assert par == serial
