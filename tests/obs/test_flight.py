"""Flight recorder: bounded rings, trigger dedup, deterministic dumps."""

import pytest

from repro.errors import SimulationError
from repro.obs import FlightRecorder, write_flight_jsonl


class FakeSim:
    def __init__(self):
        self.now = 0.0


def make_recorder(**kwargs):
    sim = FakeSim()
    return sim, FlightRecorder(sim, **kwargs)


class TestNotes:
    def test_ring_keeps_only_the_trailing_entries(self):
        sim, fr = make_recorder(entries=2)
        for i in range(5):
            sim.now = float(i)
            fr.note(0, "sub", f"e{i}")
        fr.trigger("test")
        entries = fr.dumps[0]["entries"]
        assert [e["event"] for e in entries] == ["e3", "e4"]
        assert fr.notes_total == 5

    def test_entries_merge_across_nodes_in_sim_order(self):
        sim, fr = make_recorder()
        fr.note(1, "sub", "a")
        fr.note(0, "sub", "b")
        fr.note(1, "sub", "c")
        fr.trigger("test")
        entries = fr.dumps[0]["entries"]
        assert [e["event"] for e in entries] == ["a", "b", "c"]
        assert [e["seq"] for e in entries] == [1, 2, 3]

    def test_note_fields_and_timestamps_pass_through(self):
        sim, fr = make_recorder()
        sim.now = 123.4567
        fr.note(2, "core.reliability", "retransmit", peer=1, pkt_seq=9)
        fr.trigger("test")
        (entry,) = fr.dumps[0]["entries"]
        assert entry["t_us"] == 123.457
        assert entry["node"] == 2 and entry["peer"] == 1
        assert entry["pkt_seq"] == 9
        assert entry["event"] == "retransmit"

    def test_reserved_keys_win_over_caller_fields(self):
        # "seq" is the global merge key: a caller field must not
        # clobber it (a packet sequence rides under another name).
        sim, fr = make_recorder()
        sim.now = 5.0
        fr.note(0, "sub", "e", seq=999, t_us=-1.0)
        fr.trigger("test")
        (entry,) = fr.dumps[0]["entries"]
        assert entry["seq"] == 1
        assert entry["t_us"] == 5.0

    def test_bad_entries_rejected(self):
        with pytest.raises(SimulationError):
            FlightRecorder(FakeSim(), entries=0)


class TestTriggers:
    def test_key_dedup_fires_once(self):
        _, fr = make_recorder()
        assert fr.trigger("fault", key=("fault", "ge")) is True
        assert fr.trigger("fault", key=("fault", "ge")) is False
        assert fr.trigger("fault", key=("fault", "outage")) is True
        assert len(fr.dumps) == 2
        assert fr.suppressed == 1

    def test_max_dumps_cap(self):
        _, fr = make_recorder(max_dumps=2)
        for i in range(5):
            fr.trigger("r", key=("k", i))
        assert len(fr.dumps) == 2
        assert fr.suppressed == 3

    def test_dump_detail_is_sorted_and_coerced(self):
        _, fr = make_recorder()
        fr.trigger("r", zulu=1, alpha=2)
        detail = fr.dumps[0]["detail"]
        assert list(detail) == ["alpha", "zulu"]

    def test_dumps_snapshot_rings_at_trigger_time(self):
        sim, fr = make_recorder()
        fr.note(0, "sub", "before")
        fr.trigger("r")
        fr.note(0, "sub", "after")
        assert [e["event"] for e in fr.dumps[0]["entries"]] == ["before"]


class TestJsonl:
    def test_write_is_deterministic(self, tmp_path):
        def build():
            sim, fr = make_recorder()
            sim.now = 10.0
            fr.note(0, "faults", "drop.ge", dst=1, uid=7)
            fr.note(1, "core.reliability", "retransmit", peer=0)
            fr.trigger("fault-engaged", key=("fault", "ge"),
                       verdict="ge", src=0, dst=1)
            return fr.dump_dicts()

        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert write_flight_jsonl(build(), str(p1)) == 1
        assert write_flight_jsonl(build(), str(p2)) == 1
        assert p1.read_bytes() == p2.read_bytes()
        line = p1.read_text().splitlines()[0]
        assert line.startswith('{"detail":{"dst":1,"src":0,'
                               '"verdict":"ge"}')

    def test_empty_dump_list_writes_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert write_flight_jsonl([], str(path)) == 0
        assert path.read_bytes() == b""
