"""Metrics registry: instrument semantics and deterministic snapshots."""

import pytest

from repro.errors import SimulationError
from repro.obs import (Counter, Gauge, Histogram, MetricsRegistry,
                       DEPTH_BUCKETS, LATENCY_BUCKETS_US)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.snapshot_value() == 0
        c.inc()
        c.inc(5)
        assert c.snapshot_value() == 6

    def test_negative_increment_rejected(self):
        c = Counter("x")
        with pytest.raises(SimulationError):
            c.inc(-1)
        assert c.snapshot_value() == 0


class TestGauge:
    def test_set_tracks_high_water(self):
        g = Gauge("occ")
        g.set(3.0)
        g.set(9.0)
        g.set(2.0)
        assert g.snapshot_value() == 2.0
        assert g.high_water == 9.0


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = Histogram("lat", buckets=[1.0, 2.0, 4.0])
        for v in [0.5, 1.0, 1.5, 4.0, 100.0]:
            h.observe(v)
        snap = h.snapshot_value()
        assert snap["count"] == 5
        assert snap["min"] == 0.5
        assert snap["max"] == 100.0
        assert snap["buckets"] == {"1": 2, "2": 1, "4": 1, "inf": 1}

    def test_min_max_seed_from_first_sample(self):
        # Regression: max used to start at 0.0, so an all-negative (or
        # all-sub-zero) stream reported a max no sample ever reached.
        h = Histogram("lat", buckets=[10.0])
        h.observe(-5.0)
        snap = h.snapshot_value()
        assert snap["min"] == -5.0
        assert snap["max"] == -5.0
        h.observe(-2.0)
        snap = h.snapshot_value()
        assert snap["min"] == -5.0
        assert snap["max"] == -2.0

    def test_empty_histogram_reports_zero_extremes(self):
        snap = Histogram("lat", buckets=[1.0]).snapshot_value()
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0

    def test_sum_rounds_stably(self):
        h = Histogram("lat", buckets=[10.0])
        h.observe(0.1)
        h.observe(0.2)
        assert h.snapshot_value()["sum"] == 0.3

    def test_unordered_buckets_rejected(self):
        with pytest.raises(SimulationError):
            Histogram("bad", buckets=[1.0, 1.0, 2.0])
        with pytest.raises(SimulationError):
            Histogram("bad", buckets=[])

    def test_default_buckets_strictly_increase(self):
        assert list(LATENCY_BUCKETS_US) == sorted(set(LATENCY_BUCKETS_US))
        assert list(DEPTH_BUCKETS) == sorted(set(DEPTH_BUCKETS))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("core.reliability", "retx", node=0)
        b = reg.counter("core.reliability", "retx", node=0)
        assert a is b
        # Different node or subsystem means a different instrument.
        assert reg.counter("core.reliability", "retx", node=1) is not a
        assert reg.counter("mpl.reliability", "retx", node=0) is not a

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("sub", "m", node=0)
        with pytest.raises(SimulationError):
            reg.gauge("sub", "m", node=0)

    def test_snapshot_shape_and_sorting(self):
        reg = MetricsRegistry()
        reg.counter("b.sub", "z", node=10).inc(1)
        reg.counter("b.sub", "a", node=2).inc(2)
        reg.gauge("a.sub", "util").set(0.5)
        snap = reg.snapshot()
        assert list(snap) == ["a.sub", "b.sub"]
        # Numeric node keys sort numerically; cluster-wide is "-".
        assert list(snap["b.sub"]) == ["2", "10"]
        assert snap["a.sub"]["-"]["util"] == 0.5
        assert snap["b.sub"]["10"]["z"] == 1

    def test_collectors_merge_at_snapshot_time(self):
        reg = MetricsRegistry()
        state = {"sent": 0}
        reg.register_collector("machine.adapter",
                               lambda: {"sent": state["sent"]}, node=0)
        state["sent"] = 7  # mutated after registration
        snap = reg.snapshot()
        assert snap["machine.adapter"]["0"]["sent"] == 7

    def test_render_lists_every_subsystem_block(self):
        reg = MetricsRegistry()
        reg.counter("core.dispatcher", "pkts", node=0).inc(3)
        h = reg.histogram("core.reliability", "ack_rtt_us", node=0)
        h.observe(12.0)
        text = reg.render()
        assert "core.dispatcher:" in text
        assert "node 0: pkts=3" in text
        assert "ack_rtt_us={count=1" in text

    def test_empty_registry_renders_placeholder(self):
        assert MetricsRegistry().render() == "(no metrics registered)"


class TestDeterminism:
    """Identical seeds must produce byte-identical metric snapshots."""

    def _run(self, seed):
        from repro.machine import Cluster
        from repro.machine.config import SP_1998

        def main(task):
            lapi = task.lapi
            n = SP_1998.lapi_payload * 4
            buf = task.memory.malloc(n)
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(n)
                yield from lapi.put(1, n, buf, src)
                yield from lapi.fence()
            yield from lapi.gfence()

        cfg = SP_1998.replace(loss_rate=0.1)
        cluster = Cluster(nnodes=2, config=cfg, seed=seed)
        cluster.run_job(main, stacks=("lapi",))
        return cluster

    def test_same_seed_same_snapshot_and_render(self):
        a, b = self._run(21), self._run(21)
        assert a.metrics.snapshot() == b.metrics.snapshot()
        assert a.metrics.render() == b.metrics.render()

    def test_different_seed_changes_loss_metrics(self):
        a, b = self._run(21), self._run(22)
        # Lossy runs under different seeds drop different packets.
        assert a.metrics.snapshot() != b.metrics.snapshot()
