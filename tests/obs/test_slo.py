"""SLO rules: verdict semantics and multi-window burn-rate alerting."""

import pickle

import pytest

from repro.errors import SimulationError
from repro.obs import (BurnRatePolicy, ErrorRateSlo, FlightRecorder,
                       GoodputSlo, LatencySlo, QuantileSketch,
                       SloEvaluator, TelemetryConfig, Timeline,
                       default_rules)


class FakeSim:
    def __init__(self):
        self.now = 0.0


def make_evaluator(rules, flight=None):
    tl = Timeline(FakeSim(), TelemetryConfig())
    return SloEvaluator(rules, tl, flight=flight)


def goodput_rule(**overrides):
    kwargs = dict(name="g", subsystem="s", counter="c", floor=1.0,
                  budget=0.25,
                  policy=BurnRatePolicy(short_windows=2, long_windows=4,
                                        fast_burn=4.0, slow_burn=1.0))
    kwargs.update(overrides)
    return GoodputSlo(**kwargs)


def flow(delta):
    return {("s", "0", "c"): ("counter", delta)}


class TestPolicy:
    def test_validate_rejects_bad_lookbacks_and_burns(self):
        with pytest.raises(SimulationError):
            BurnRatePolicy(short_windows=0).validate()
        with pytest.raises(SimulationError):
            BurnRatePolicy(short_windows=8, long_windows=4).validate()
        with pytest.raises(SimulationError):
            BurnRatePolicy(fast_burn=1.0, slow_burn=2.0).validate()
        BurnRatePolicy().validate()

    def test_bad_budget_rejected_at_evaluator_build(self):
        with pytest.raises(SimulationError):
            make_evaluator((goodput_rule(budget=0.0),))

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(SimulationError):
            make_evaluator((goodput_rule(), goodput_rule()))


class TestVerdicts:
    def test_error_rate_skips_windows_without_traffic(self):
        rule = ErrorRateSlo(name="e", subsystem="s", errors="err",
                            total="tot", max_ratio=0.5)
        assert rule.evaluate({}) is None
        values = {("s", "0", "err"): ("counter", 3),
                  ("s", "0", "tot"): ("counter", 4)}
        assert rule.evaluate(values) is True
        values[("s", "0", "err")] = ("counter", 2)
        assert rule.evaluate(values) is False

    def test_latency_skips_empty_windows(self):
        rule = LatencySlo(name="l", subsystem="s", metric="lat",
                          quantile=0.5, target_us=100.0)
        assert rule.evaluate({}) is None
        sk = QuantileSketch()
        sk.observe(500.0)
        assert rule.evaluate({("s", "0", "lat"): ("hist", sk)}) is True
        ok = QuantileSketch()
        ok.observe(50.0)
        assert rule.evaluate({("s", "0", "lat"): ("hist", ok)}) is False

    def test_latency_merges_across_nodes(self):
        rule = LatencySlo(name="l", subsystem="s", metric="lat",
                          quantile=0.95, target_us=100.0)
        a, b = QuantileSketch(), QuantileSketch()
        for _ in range(9):
            a.observe(10.0)
        b.observe(10_000.0)  # one outlier on another node drives p95
        values = {("s", "0", "lat"): ("hist", a),
                  ("s", "1", "lat"): ("hist", b)}
        assert rule.evaluate(values) is True

    def test_goodput_gap_window_is_a_violation(self):
        rule = goodput_rule()
        assert rule.evaluate({}) is True
        assert rule.evaluate(flow(5)) is False


class TestBurnRateAlerting:
    def run_windows(self, ev, deltas):
        for w, delta in enumerate(deltas):
            values = {} if delta is None else flow(delta)
            ev.on_window(w, (w + 1) * 100.0, values)

    def test_warmup_holds_until_stream_flows(self):
        ev = make_evaluator((goodput_rule(),))
        # Gaps before first flow are warmup, not violations.
        self.run_windows(ev, [None, None, None, 5, 5, 5, 5])
        assert ev.alerts == []
        assert ev.summary()[0]["violations"] == 0
        assert ev.summary()[0]["windows"] == 4

    def test_outage_pages_then_recovery_clears(self):
        flight = FlightRecorder(FakeSim(), entries=4)
        ev = make_evaluator((goodput_rule(),), flight=flight)
        # Flow, then a total outage, then recovery.
        self.run_windows(ev, [5, 5, None, None, None, None,
                              5, 5, 5, 5, 5])
        events = [a["event"] for a in ev.alerts]
        assert "page" in events
        assert events[-1] == "clear"
        assert events.index("page") < events.index("clear")
        # Alerts carry virtual timestamps and both burns.
        page = next(a for a in ev.alerts if a["event"] == "page")
        assert page["t_us"] > 0 and page["short_burn"] >= 4.0
        # The first page captured a flight dump (deduped by rule).
        assert [d["reason"] for d in flight.dumps] == ["slo-page"]

    def test_alerts_are_transitions_not_levels(self):
        ev = make_evaluator((goodput_rule(),))
        self.run_windows(ev, [5, 5] + [None] * 8)
        # A sustained outage alerts once per state change, not per
        # window: monotone escalation warn -> page, no repeats.
        events = [a["event"] for a in ev.alerts]
        assert len(events) == len(set(events))

    def test_deterministic_alert_log(self):
        deltas = [5, 5, None, None, None, 5, 5, 5, 5]
        a = make_evaluator((goodput_rule(),))
        b = make_evaluator((goodput_rule(),))
        self.run_windows(a, deltas)
        self.run_windows(b, deltas)
        assert a.alert_dicts() == b.alert_dicts()
        assert a.summary() == b.summary()


class TestDefaults:
    def test_default_rules_are_picklable_and_named_uniquely(self):
        rules = default_rules()
        assert len({r.name for r in rules}) == len(rules) == 3
        clone = pickle.loads(pickle.dumps(rules))
        assert clone == rules

    def test_default_rules_build_an_evaluator(self):
        ev = make_evaluator(default_rules())
        assert [s["rule"] for s in ev.summary()] == [
            "goodput-floor", "retx-rate", "ack-rtt-p99"]
