"""Quantile sketch: accuracy bounds, exact merge, stable layout."""

import json
import random

import pytest

from repro.errors import SimulationError
from repro.obs import DEFAULT_ALPHA, QuantileSketch, merge_sketches


def sketch_of(values, alpha=DEFAULT_ALPHA):
    s = QuantileSketch(alpha=alpha)
    s.extend(values)
    return s


class TestObserve:
    def test_empty_sketch_has_no_quantiles(self):
        s = QuantileSketch()
        assert s.count == 0
        assert s.quantile(0.5) is None
        assert s.mean is None

    def test_mean_and_count_are_exact(self):
        s = sketch_of([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5

    def test_weighted_observe(self):
        a = sketch_of([5.0] * 3)
        b = QuantileSketch()
        b.observe(5.0, n=3)
        assert a == b
        with pytest.raises(SimulationError):
            b.observe(1.0, n=0)

    def test_zero_and_negative_values(self):
        s = sketch_of([-10.0, 0.0, 10.0])
        assert s.zero == 1
        q0 = s.quantile(0.0)
        q1 = s.quantile(1.0)
        assert q0 < 0.0 < q1
        assert abs(q0 + 10.0) <= DEFAULT_ALPHA * 10.0
        assert abs(q1 - 10.0) <= DEFAULT_ALPHA * 10.0

    def test_invalid_alpha_and_quantile_rejected(self):
        with pytest.raises(SimulationError):
            QuantileSketch(alpha=0.0)
        with pytest.raises(SimulationError):
            QuantileSketch(alpha=1.0)
        with pytest.raises(SimulationError):
            QuantileSketch().quantile(1.5)


class TestAccuracy:
    def test_relative_error_bound_holds(self):
        # Deterministic pseudo-random latency-like stream.
        rng = random.Random(0xD15C)
        values = sorted(rng.lognormvariate(3.0, 1.0)
                        for _ in range(5000))
        s = sketch_of(values)
        for q in (0.5, 0.9, 0.99, 0.999):
            true = values[min(len(values) - 1,
                              max(0, -(-int(q * len(values))) - 1))]
            est = s.quantile(q)
            assert abs(est - true) <= 2.0 * DEFAULT_ALPHA * true, \
                f"q={q}: est {est} vs true {true}"

    def test_single_value_round_trips_within_alpha(self):
        s = sketch_of([123.456])
        for q in (0.0, 0.5, 1.0):
            assert abs(s.quantile(q) - 123.456) \
                <= DEFAULT_ALPHA * 123.456


class TestMerge:
    def test_merge_equals_whole_stream_sketch(self):
        rng = random.Random(7)
        values = [rng.uniform(0.1, 1000.0) for _ in range(999)]
        whole = sketch_of(values)
        parts = [sketch_of(values[i::4]) for i in range(4)]
        assert merge_sketches(parts) == whole

    def test_merge_is_order_independent(self):
        rng = random.Random(8)
        chunks = [[rng.expovariate(0.01) for _ in range(50)]
                  for _ in range(5)]
        parts = [sketch_of(c) for c in chunks]
        forward = merge_sketches(parts)
        backward = merge_sketches(reversed(parts))
        assert forward == backward
        assert forward.to_dict() == backward.to_dict()

    def test_merge_is_associative(self):
        a, b, c = (sketch_of([1.0, 2.0]), sketch_of([3.0]),
                   sketch_of([4.0, 5.0, 6.0]))
        left = merge_sketches([merge_sketches([a, b]), c])
        right = merge_sketches([a, merge_sketches([b, c])])
        assert left == right

    def test_merge_leaves_inputs_untouched(self):
        a = sketch_of([1.0])
        before = a.to_dict()
        merge_sketches([a, sketch_of([9.0])])
        assert a.to_dict() == before

    def test_mismatched_alpha_rejected(self):
        with pytest.raises(SimulationError):
            sketch_of([1.0]).merge(sketch_of([1.0], alpha=0.02))


class TestSerialization:
    def test_to_dict_round_trips(self):
        s = sketch_of([-3.0, 0.0, 1.0, 10.0, 10.0, 250.0])
        clone = QuantileSketch.from_dict(s.to_dict())
        assert clone == s
        assert clone.to_dict() == s.to_dict()

    def test_equal_sketches_serialize_byte_identically(self):
        # Same observations in different orders: identical JSON.
        values = [5.0, 1.0, 99.0, 0.25, 5.0]
        a = sketch_of(values)
        b = sketch_of(list(reversed(values)))
        dump = lambda s: json.dumps(s.to_dict(), sort_keys=True)
        assert dump(a) == dump(b)
