"""Timeline: window boundaries, ring bounds, close listeners."""

import pytest

from repro.errors import SimulationError
from repro.obs import TelemetryConfig, Timeline


class FakeSim:
    """Just enough of the kernel: a settable virtual clock."""

    def __init__(self):
        self.now = 0.0


def make_timeline(**kwargs):
    sim = FakeSim()
    return sim, Timeline(sim, TelemetryConfig(**kwargs))


class TestConfig:
    def test_validate_rejects_bad_values(self):
        with pytest.raises(SimulationError):
            TelemetryConfig(window_us=0.0).validate()
        with pytest.raises(SimulationError):
            TelemetryConfig(ring_windows=0).validate()
        with pytest.raises(SimulationError):
            TelemetryConfig(flight_entries=0).validate()
        TelemetryConfig().validate()

    def test_config_is_hashable_and_frozen(self):
        cfg = TelemetryConfig()
        hash(cfg)
        with pytest.raises(Exception):
            cfg.window_us = 5.0


class TestWindowing:
    def test_edge_observation_lands_in_later_window(self):
        sim, tl = make_timeline(window_us=100.0)
        c = tl.stream_counter("sub", "x")
        sim.now = 99.999
        c.add(1)
        sim.now = 100.0  # exactly on the edge: window 1, not 0
        c.add(10)
        tl.finalize()
        assert tl.counter_windows("sub", "x") == [[0, 1], [1, 10]]

    def test_empty_windows_are_absent_not_zero(self):
        sim, tl = make_timeline(window_us=10.0)
        c = tl.stream_counter("sub", "x")
        c.add(1)
        sim.now = 55.0  # windows 1..4 never see data
        c.add(2)
        tl.finalize()
        assert tl.counter_windows("sub", "x") == [[0, 1], [5, 2]]

    def test_counter_windows_record_deltas(self):
        sim, tl = make_timeline(window_us=10.0)
        c = tl.stream_counter("sub", "x")
        c.add(3)
        c.add(4)
        sim.now = 10.0
        c.add(5)
        tl.finalize()
        assert tl.counter_windows("sub", "x") == [[0, 7], [1, 5]]

    def test_gauge_keeps_last_value_per_window(self):
        sim, tl = make_timeline(window_us=10.0)
        g = tl.series("gauge", "sub", "depth")
        g.set(3.0)
        g.set(8.0)
        sim.now = 10.0
        g.set(1.0)
        tl.finalize()
        snap = tl.snapshot()
        (series,) = snap["series"]
        assert series["windows"] == [[0, 8.0], [1, 1.0]]

    def test_hist_series_tracks_per_window_and_cumulative(self):
        sim, tl = make_timeline(window_us=10.0)
        h = tl.series("hist", "sub", "lat", node=0)
        h.observe(100.0)
        sim.now = 10.0
        h.observe(200.0)
        tl.finalize()
        (series,) = tl.snapshot()["series"]
        assert [w for w, _ in series["windows"]] == [0, 1]
        assert series["cumulative"]["count"] == 2
        assert series["quantiles"]["p50"] == pytest.approx(100.0,
                                                           rel=0.02)

    def test_ring_is_bounded(self):
        sim, tl = make_timeline(window_us=1.0, ring_windows=4)
        c = tl.stream_counter("sub", "x")
        for w in range(10):
            sim.now = float(w)
            c.add(w + 1)
        tl.finalize()
        windows = tl.counter_windows("sub", "x")
        assert len(windows) == 4
        assert windows == [[6, 7], [7, 8], [8, 9], [9, 10]]

    def test_finalize_is_idempotent(self):
        sim, tl = make_timeline(window_us=10.0)
        tl.stream_counter("sub", "x").add(1)
        tl.finalize()
        first = tl.snapshot()
        tl.finalize()
        assert tl.snapshot() == first

    def test_empty_timeline_snapshot(self):
        _, tl = make_timeline()
        assert tl.snapshot() == {"window_us": 100.0, "series": []}


class TestListeners:
    def test_listener_sees_each_closed_window_once(self):
        sim, tl = make_timeline(window_us=10.0)
        seen = []
        tl.add_close_listener(
            lambda w, end, values: seen.append((w, end, dict(values))))
        c = tl.stream_counter("sub", "x", node=0)
        c.add(2)
        sim.now = 30.0
        c.add(5)  # closes windows 0..2; only window 0 carries data
        tl.finalize()  # closes window 3
        assert [(w, end) for w, end, _ in seen] == [
            (0, 10.0), (1, 20.0), (2, 30.0), (3, 40.0)]
        assert seen[0][2] == {("sub", "0", "x"): ("counter", 2)}
        assert seen[1][2] == {}  # gap window: no values
        assert seen[3][2] == {("sub", "0", "x"): ("counter", 5)}

    def test_series_registry_is_get_or_create(self):
        _, tl = make_timeline()
        a = tl.stream_counter("sub", "x", node=3)
        b = tl.series("counter", "sub", "x", node=3)
        assert a is b
        with pytest.raises(SimulationError):
            tl.series("bogus", "sub", "x")

    def test_snapshot_orders_series_deterministically(self):
        sim, tl = make_timeline()
        tl.stream_counter("b.sub", "z", node=10).add(1)
        tl.stream_counter("b.sub", "z", node=2).add(1)
        tl.stream_counter("a.sub", "a").add(1)
        keys = [(s["subsystem"], s["node"])
                for s in tl.snapshot()["series"]]
        assert keys == [("a.sub", "-"), ("b.sub", "2"), ("b.sub", "10")]
