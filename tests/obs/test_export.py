"""Structured trace export: JSONL schema, determinism, file writing."""

import gzip
import json

from repro.obs import jsonl_lines, record_to_dict, write_trace_jsonl
from repro.sim import TraceRecord, Tracer


def _sample_records():
    return [
        TraceRecord(1.25, "node0", "tx", "inject",
                    {"uid": 4, "kind": "data", "bytes": 1024}),
        TraceRecord(3.5, "switch", "route", "deliver", {"uid": 4}),
        TraceRecord(9.0, "node1", "rx", "receive"),
    ]


class TestRecordToDict:
    def test_schema_keys(self):
        d = record_to_dict(_sample_records()[0])
        assert set(d) == {"time_us", "node", "subsystem", "event",
                          "fields"}
        assert d["time_us"] == 1.25
        assert d["node"] == "node0"
        assert d["subsystem"] == "tx"
        assert d["event"] == "inject"
        assert d["fields"]["bytes"] == 1024

    def test_empty_fields_stay_empty_dict(self):
        d = record_to_dict(_sample_records()[2])
        assert d["fields"] == {}


class TestJsonlLines:
    def test_every_line_parses_back(self):
        lines = list(jsonl_lines(_sample_records()))
        assert len(lines) == 3
        for line in lines:
            parsed = json.loads(line)
            assert set(parsed) == {"time_us", "node", "subsystem",
                                   "event", "fields"}

    def test_encoding_is_deterministic(self):
        a = list(jsonl_lines(_sample_records()))
        b = list(jsonl_lines(_sample_records()))
        assert a == b

    def test_non_json_field_values_stringified(self):
        rec = TraceRecord(0.0, "n", "c", "m", {"obj": object()})
        parsed = json.loads(next(jsonl_lines([rec])))
        assert isinstance(parsed["fields"]["obj"], str)


class TestWriteTraceJsonl:
    def test_writes_and_counts_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        n = write_trace_jsonl(_sample_records(), path)
        assert n == 3
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[1])["subsystem"] == "route"

    def test_append_mode_extends_truncate_replaces(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(_sample_records(), path)
        write_trace_jsonl(_sample_records(), path, append=True)
        assert len(path.read_text().splitlines()) == 6
        write_trace_jsonl(_sample_records(), path)
        assert len(path.read_text().splitlines()) == 3

    def test_gz_path_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        n = write_trace_jsonl(_sample_records(), path)
        assert n == 3
        lines = gzip.decompress(path.read_bytes()).decode().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[0])["node"] == "node0"

    def test_gz_append_concatenates_members(self, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        write_trace_jsonl(_sample_records(), path)
        write_trace_jsonl(_sample_records(), path, append=True)
        lines = gzip.decompress(path.read_bytes()).decode().splitlines()
        assert len(lines) == 6

    def test_gz_output_is_byte_deterministic(self, tmp_path):
        a, b = tmp_path / "a.jsonl.gz", tmp_path / "b.jsonl.gz"
        write_trace_jsonl(_sample_records(), a)
        write_trace_jsonl(_sample_records(), b)
        assert a.read_bytes() == b.read_bytes()

    def test_real_cluster_trace_round_trips(self, tmp_path):
        from repro.machine import Cluster

        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(64)
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(64)
                yield from lapi.put(1, 64, buf, src)
                yield from lapi.fence()
            yield from lapi.gfence()

        tracer = Tracer(categories=["tx", "rx", "route"])
        cluster = Cluster(nnodes=2, trace=tracer)
        cluster.run_job(main, stacks=("lapi",))
        assert tracer.records, "trace should capture packet events"
        path = tmp_path / "cluster.jsonl"
        n = write_trace_jsonl(tracer.records, path)
        assert n == len(tracer.records)
        times = [json.loads(line)["time_us"]
                 for line in path.read_text().splitlines()]
        assert times == sorted(times)
