"""Scale and stress integration tests: larger jobs, cross-group
traffic, contention, fault injection -- the whole stack at once."""

import numpy as np
import pytest

from repro.machine import Cluster
from repro.machine.config import SP_1998


class TestEightNodeLapi:
    def test_all_to_all_puts(self):
        """Every task puts a distinct value into every other task's
        window; cross-group traffic exercises the multistage core."""
        nnodes = 8

        def main(task):
            lapi = task.lapi
            mem = task.memory
            window = mem.malloc(8 * nnodes)
            src = mem.malloc(8)
            mem.write_i64(src, 100 + task.rank)
            yield from lapi.gfence()
            for peer in range(nnodes):
                if peer != task.rank:
                    yield from lapi.put(peer, 8,
                                        window + 8 * task.rank, src)
                else:
                    mem.write_i64(window + 8 * task.rank,
                                  100 + task.rank)
            yield from lapi.gfence()
            return [mem.read_i64(window + 8 * r) for r in range(nnodes)]

        results = Cluster(nnodes=nnodes).run_job(main, stacks=("lapi",))
        expect = [100 + r for r in range(nnodes)]
        assert all(r == expect for r in results)

    def test_rmw_contention_sixteen_tasks(self):
        """16 tasks hammer one counter word: exact count, all distinct
        fetch values (serialization at the owner's dispatcher)."""
        nnodes = 16
        per_task = 4

        def main(task):
            from repro.core import RmwOp
            lapi = task.lapi
            mem = task.memory
            word = mem.malloc(8)
            mem.write_i64(word, 0)
            yield from lapi.gfence()
            got = []
            for _ in range(per_task):
                prev = yield from lapi.rmw_sync(RmwOp.FETCH_AND_ADD, 0,
                                                word, 1)
                got.append(prev)
            yield from lapi.gfence()
            if task.rank == 0:
                return ("final", mem.read_i64(word))
            return got

        results = Cluster(nnodes=nnodes).run_job(main, stacks=("lapi",))
        assert results[0] == ("final", nnodes * per_task)
        fetched = [v for r in results[1:] for v in r]
        assert len(set(fetched)) == len(fetched)

    def test_gfence_under_loss_eight_nodes(self):
        cfg = SP_1998.replace(loss_rate=0.08)

        def main(task):
            for _ in range(3):
                yield from task.lapi.gfence()
            return "ok"

        results = Cluster(nnodes=8, config=cfg, seed=17).run_job(
            main, stacks=("lapi",))
        assert results == ["ok"] * 8


class TestEightNodeGa:
    def test_ga_ring_accumulate(self):
        """8 tasks accumulate into overlapping sections: exact sums."""
        nnodes = 8

        def main(task):
            ga = task.ga
            h = yield from ga.create((64, 64))
            yield from ga.zero(h)
            ones = np.ones((32, 32))
            # Each rank accumulates into a section shifted by its rank:
            # overlaps guarantee real contention on the mutex path.
            base = task.rank * 4
            yield from ga.acc_ndarray(
                h, (base, base + 31, base, base + 31), ones)
            yield from ga.sync()
            got = yield from ga.get_ndarray(h, (0, 63, 0, 63))
            yield from ga.sync()
            return float(got.sum())

        results = Cluster(nnodes=nnodes).run_job(main,
                                                 ga_backend="lapi")
        # Total mass: 8 ranks x 32x32 ones.
        assert all(r == pytest.approx(8 * 32 * 32) for r in results)

    def test_ga_read_inc_work_queue_eight_tasks(self):
        """The SCF work-queue pattern at 8 tasks: every item claimed
        exactly once."""
        items = 40

        def main(task):
            ga = task.ga
            c = yield from ga.create((1, 1), dtype=np.int64)
            yield from ga.zero(c)
            yield from ga.sync()
            mine = []
            while True:
                k = yield from ga.read_inc(c, (0, 0), 1)
                if k >= items:
                    break
                mine.append(k)
            yield from ga.sync()
            return mine

        results = Cluster(nnodes=8).run_job(main, ga_backend="lapi")
        claimed = sorted(k for r in results for k in r)
        assert claimed == list(range(items))

    def test_mixed_stacks_one_job(self):
        """LAPI and MPL coexist on the same adapter (the paper: 'IBM
        offers the use of both MPI and LAPI in the same application')."""
        def main(task):
            lapi, mpl = task.lapi, task.mpl
            mem = task.memory
            window = mem.malloc(16)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                src = mem.malloc(16)
                mem.write(src, b"via-lapi-putttt!")
                yield from lapi.put(1, 16, window, src,
                                    tgt_cntr=tgt.id)
                reply = yield from mpl.recv_bytes(1, tag=1)
                yield from mpl.barrier()
                return reply
            else:
                yield from lapi.waitcntr(tgt, 1)
                data = mem.read(window, 16)
                yield from mpl.send(0, data.upper(), 16, tag=1)
                yield from mpl.barrier()

        results = Cluster(nnodes=2).run_job(main,
                                            stacks=("lapi", "mpl"))
        assert results[0] == b"VIA-LAPI-PUTTTT!"


class TestOddSizes:
    @pytest.mark.parametrize("nnodes", [3, 5, 7])
    def test_ga_sync_odd_node_counts(self, nnodes):
        def main(task):
            ga = task.ga
            h = yield from ga.create((30, 30))
            yield from ga.zero(h)
            view_ok = True
            if ga.array(h).local_block is not None:
                view_ok = ga.access(h).size > 0
            yield from ga.sync()
            return view_ok

        assert all(Cluster(nnodes=nnodes).run_job(main,
                                                  ga_backend="lapi"))

    def test_single_node_everything(self):
        """All stacks degenerate cleanly to one task."""
        def main(task):
            ga = task.ga
            h = yield from ga.create((8, 8))
            yield from ga.fill(h, 3.0)
            yield from ga.acc_ndarray(h, (0, 7, 0, 7),
                                      np.ones((8, 8)))
            yield from ga.sync()
            got = yield from ga.get_ndarray(h, (0, 7, 0, 7))
            value = yield from ga.dot(h, h)
            yield from ga.sync()
            return bool(np.all(got == 4.0)), value

        ok, value = Cluster(nnodes=1).run_job(main,
                                              ga_backend="lapi")[0]
        assert ok
        assert value == pytest.approx(64 * 16.0)
