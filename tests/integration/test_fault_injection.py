"""Fault-injection integration tests: overload and lossy fabrics."""

import numpy as np
import pytest

from repro.machine import Cluster
from repro.machine.config import SP_1998


class TestRxOverflow:
    def test_tiny_rx_fifo_forces_drops_yet_delivers(self):
        """A 4-slot RX FIFO cannot absorb a 30-packet burst: the
        adapter drops, retransmission recovers, data arrives intact."""
        cfg = SP_1998.replace(adapter_rx_fifo=4, lapi_window=64)
        n = 30 * SP_1998.lapi_payload
        payload = bytes(i % 249 for i in range(n))

        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(n)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(n)
                task.memory.write(src, payload)
                yield from lapi.put(1, n, buf, src, tgt_cntr=tgt.id)
                yield from lapi.fence()
                yield from lapi.gfence()
                return (lapi.transport.retransmissions,
                        task.node.adapter.rx_dropped)
            # Polling mode + a long sleep: the burst lands while nobody
            # drains the 4-slot FIFO, forcing overload drops.
            yield from task.thread.sleep(1500.0)
            yield from lapi.waitcntr(tgt, 1)
            data = task.memory.read(buf, n)
            yield from lapi.gfence()
            return data, task.node.adapter.rx_dropped

        results = Cluster(nnodes=2, config=cfg, seed=21).run_job(
            main, stacks=("lapi",), interrupt_mode=False)
        data, drops_at_target = results[1]
        assert data == payload
        retx, _ = results[0]
        # The overload must actually have happened and been recovered.
        assert drops_at_target > 0
        assert retx > 0

    def test_ga_survives_lossy_fabric(self):
        """A full GA workload (puts, gets, accumulates, sync) over a
        5%-loss fabric produces exact results."""
        cfg = SP_1998.replace(loss_rate=0.05)
        data = np.arange(20 * 20, dtype=np.float64).reshape(20, 20)

        def main(task):
            ga = task.ga
            h = yield from ga.create((40, 40))
            yield from ga.zero(h)
            if task.rank == 0:
                yield from ga.put_ndarray(h, (5, 24, 5, 24), data)
            yield from ga.sync()
            yield from ga.acc_ndarray(h, (5, 24, 5, 24),
                                      np.ones((20, 20)))
            yield from ga.sync()
            got = yield from ga.get_ndarray(h, (5, 24, 5, 24))
            yield from ga.sync()
            return np.array_equal(got, data + task.size)

        results = Cluster(nnodes=4, config=cfg, seed=23).run_job(
            main, ga_backend="lapi")
        assert all(results)

    def test_mpl_collectives_survive_loss(self):
        cfg = SP_1998.replace(loss_rate=0.1)

        def main(task):
            mpl = task.mpl
            total = yield from mpl.allreduce(task.rank + 1,
                                             lambda a, b: a + b)
            blob = yield from mpl.bcast(
                b"lossy" if task.rank == 0 else None)
            return total, blob

        results = Cluster(nnodes=4, config=cfg, seed=31).run_job(
            main, stacks=("mpl",))
        assert all(r == (10, b"lossy") for r in results)


class TestPathology:
    def test_dead_peer_diagnosed(self):
        """A task sending to a rank that never participates gets the
        transport's unreachable-peer diagnosis instead of hanging."""
        from repro.errors import NetworkError

        def main(task):
            lapi = task.lapi
            mem = task.memory
            window = mem.malloc(8)  # symmetric allocation
            if task.rank == 0:
                # Rank 1 exists but never enters any matching
                # collective; rank 0's gfence token goes unanswered
                # because rank 1 (interrupts off, never polling) never
                # services it.
                yield from lapi.put(1, 8, window, window)
                yield from lapi.gfence()
            else:
                lapi.set_interrupt_mode(False)
                # Never calls gfence or polls; sleeps forever-ish.
                yield from task.thread.sleep(1e9)

        cfg = SP_1998.replace(lapi_retrans_timeout=200.0)
        with pytest.raises(NetworkError, match="mismatched|terminated"):
            Cluster(nnodes=2, config=cfg).run_job(
                main, stacks=("lapi",))