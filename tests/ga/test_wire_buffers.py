"""Unit tests for GA wire descriptors, buffer pool, packing helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GaError
from repro.ga import DESCRIPTOR_SIZE, Descriptor, GaOp, Section
from repro.ga.buffers import AmBufferPool
from repro.machine.memory import Memory


class TestDescriptor:
    def test_roundtrip(self):
        d = Descriptor(op=GaOp.ACC, handle=3,
                       section=Section(1, 2, 3, 4), offset=100,
                       total=4096, alpha=2.5, reply_addr=1 << 41,
                       reply_cntr=7, aux=-3)
        back = Descriptor.unpack(d.pack())
        assert back == d

    def test_size_fits_uhdr(self):
        from repro.machine.config import SP_1998
        assert DESCRIPTOR_SIZE <= SP_1998.lapi_uhdr_max

    def test_packed_length_constant(self):
        d = Descriptor(op=GaOp.PUT, handle=0,
                       section=Section(0, 0, 0, 0))
        assert len(d.pack()) == DESCRIPTOR_SIZE

    def test_short_blob_rejected(self):
        with pytest.raises(GaError):
            Descriptor.unpack(b"tiny")

    def test_unpack_ignores_trailing_data(self):
        d = Descriptor(op=GaOp.GET, handle=1,
                       section=Section(0, 9, 0, 9))
        assert Descriptor.unpack(d.pack() + b"extra") == d

    def test_op_name(self):
        d = Descriptor(op=GaOp.READ_INC, handle=0,
                       section=Section(0, 0, 0, 0))
        assert d.op_name == "read_inc"

    @given(st.integers(0, 2**31 - 1), st.integers(0, 2**40),
           st.floats(allow_nan=False, allow_infinity=False))
    def test_roundtrip_property(self, total, addr, alpha):
        d = Descriptor(op=GaOp.PUT, handle=5,
                       section=Section(0, 3, 0, 3), total=total,
                       reply_addr=addr, alpha=alpha)
        assert Descriptor.unpack(d.pack()) == d


class TestBufferPool:
    def make(self, small=4, large=2):
        mem = Memory(0)
        return AmBufferPool(mem, small_size=1024, small_count=small,
                            large_size=8192, large_count=large)

    def test_acquire_release_small(self):
        pool = self.make()
        a = pool.acquire(100)
        assert pool.small_free == 3
        pool.release(a)
        assert pool.small_free == 4

    def test_large_request_uses_large_slot(self):
        pool = self.make()
        a = pool.acquire(5000)
        assert pool.large_free == 1
        assert pool.small_free == 4
        pool.release(a)

    def test_small_overflow_spills_to_large(self):
        pool = self.make(small=1)
        a = pool.acquire(100)
        b = pool.acquire(100)  # small exhausted -> large slot
        assert pool.large_free == 1
        pool.release(a)
        pool.release(b)

    def test_exhaustion_is_hard_error(self):
        pool = self.make(small=1, large=1)
        pool.acquire(100)
        pool.acquire(100)
        with pytest.raises(GaError, match="exhausted"):
            pool.acquire(100)

    def test_oversize_rejected(self):
        pool = self.make()
        with pytest.raises(GaError, match="exceeds"):
            pool.acquire(100000)

    def test_release_unknown_rejected(self):
        pool = self.make()
        with pytest.raises(GaError):
            pool.release(12345)

    def test_high_water_stats(self):
        pool = self.make()
        a = pool.acquire(10)
        b = pool.acquire(10)
        pool.release(a)
        pool.release(b)
        assert pool.small_high_water == 2
        assert pool.in_use == 0


class TestPacking:
    def _make_ga(self, dims=(8, 8), ntasks=1):
        from repro.ga.array import GlobalArray
        from repro.ga.distribution import BlockDistribution
        mem = Memory(0)
        dist = BlockDistribution.create(dims, ntasks)
        block = dist.block(0)
        addr = mem.malloc(block.size * 8)
        ga = GlobalArray(handle=0, name="t", dims=dims,
                         dtype=np.dtype(np.float64), dist=dist, rank=0,
                         local_addr=addr, base_addrs=[addr])
        return mem, ga

    def test_read_write_piece_roundtrip(self):
        from repro.ga.packing import read_piece_packed, write_piece_packed
        mem, ga = self._make_ga()
        piece = Section(1, 4, 2, 5)
        data = np.arange(piece.size, dtype=np.float64).tobytes()
        write_piece_packed(mem, ga, 0, piece, data)
        assert read_piece_packed(mem, ga, 0, piece) == data

    def test_scatter_range_equals_full_write(self):
        from repro.ga.packing import (read_piece_packed,
                                      scatter_packed_range)
        mem, ga = self._make_ga()
        piece = Section(0, 5, 1, 6)
        data = np.arange(piece.size, dtype=np.float64).tobytes()
        # Deliver in awkward chunk sizes.
        for off in range(0, len(data), 56):
            scatter_packed_range(mem, ga, 0, piece,
                                 data[off:off + 56], off)
        assert read_piece_packed(mem, ga, 0, piece) == data

    def test_gather_range_matches(self):
        from repro.ga.packing import (gather_packed_range,
                                      write_piece_packed)
        mem, ga = self._make_ga()
        piece = Section(2, 6, 0, 3)
        data = np.arange(piece.size, dtype=np.float64).tobytes()
        write_piece_packed(mem, ga, 0, piece, data)
        got = b"".join(gather_packed_range(mem, ga, 0, piece, off,
                                           min(48, len(data) - off))
                       for off in range(0, len(data), 48))
        assert got == data

    def test_accumulate_range(self):
        from repro.ga.packing import (accumulate_packed_range,
                                      read_piece_packed,
                                      write_piece_packed)
        mem, ga = self._make_ga()
        piece = Section(0, 3, 0, 3)
        base = np.full(piece.size, 10.0)
        write_piece_packed(mem, ga, 0, piece, base.tobytes())
        add = np.arange(piece.size, dtype=np.float64)
        accumulate_packed_range(mem, ga, 0, piece, add.tobytes(), 0,
                                alpha=2.0)
        out = np.frombuffer(read_piece_packed(mem, ga, 0, piece))
        assert np.allclose(out, 10.0 + 2.0 * add)

    def test_chunk_overrun_rejected(self):
        from repro.ga.packing import scatter_packed_range
        mem, ga = self._make_ga()
        piece = Section(0, 1, 0, 1)
        with pytest.raises(GaError, match="overruns"):
            scatter_packed_range(mem, ga, 0, piece, b"x" * 64, 0)

    @given(st.integers(1, 7), st.integers(1, 7), st.data())
    def test_chunked_scatter_roundtrip_property(self, rows, cols, data):
        from repro.ga.packing import (read_piece_packed,
                                      scatter_packed_range)
        mem, ga = self._make_ga()
        piece = Section(0, rows - 1, 0, cols - 1)
        blob = np.random.default_rng(0).random(piece.size).tobytes()
        chunk = data.draw(st.integers(8, 128))
        for off in range(0, len(blob), chunk):
            scatter_packed_range(mem, ga, 0, piece,
                                 blob[off:off + chunk], off)
        assert read_piece_packed(mem, ga, 0, piece) == blob
