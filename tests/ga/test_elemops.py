"""Tests for GA's whole-array collective operations."""

import numpy as np
import pytest

from repro.errors import GaError

from .conftest import run_ga


def _filled(ga, dims, value):
    """Create an array and fill it (collective); returns the handle."""
    h = yield from ga.create(dims)
    yield from ga.fill(h, value)
    yield from ga.sync()
    return h


class TestScale:
    def test_scale_all_blocks(self, backend):
        def main(task):
            ga = task.ga
            h = yield from _filled(ga, (24, 24), 2.0)
            yield from ga.scale(h, 2.5)
            got = yield from ga.get_ndarray(h, (0, 23, 0, 23))
            yield from ga.sync()
            return bool(np.all(got == 5.0))

        assert all(run_ga(main, backend=backend))

    def test_scale_by_zero(self, backend):
        def main(task):
            ga = task.ga
            h = yield from _filled(ga, (8, 8), 3.0)
            yield from ga.scale(h, 0.0)
            got = yield from ga.get_ndarray(h, (0, 7, 0, 7))
            yield from ga.sync()
            return bool(np.all(got == 0.0))

        assert all(run_ga(main, backend=backend))


class TestAddCopy:
    def test_add_linear_combination(self, backend):
        def main(task):
            ga = task.ga
            a = yield from _filled(ga, (16, 16), 1.0)
            b = yield from _filled(ga, (16, 16), 10.0)
            c = yield from _filled(ga, (16, 16), 0.0)
            yield from ga.add(c, a, b, alpha=2.0, beta=0.5)
            got = yield from ga.get_ndarray(c, (0, 15, 0, 15))
            yield from ga.sync()
            return bool(np.all(got == 7.0))

        assert all(run_ga(main, backend=backend))

    def test_add_in_place(self, backend):
        """C may alias A (common GA usage: A = A + B)."""
        def main(task):
            ga = task.ga
            a = yield from _filled(ga, (12, 12), 4.0)
            b = yield from _filled(ga, (12, 12), 1.0)
            yield from ga.add(a, a, b)
            got = yield from ga.get_ndarray(a, (0, 11, 0, 11))
            yield from ga.sync()
            return bool(np.all(got == 5.0))

        assert all(run_ga(main, backend=backend))

    def test_misaligned_rejected(self, backend):
        def main(task):
            ga = task.ga
            a = yield from _filled(ga, (8, 8), 1.0)
            b = yield from _filled(ga, (8, 9), 1.0)
            try:
                yield from ga.add(a, a, b)
            except GaError:
                yield from ga.sync()
                return "rejected"

        assert run_ga(main, backend=backend)[0] == "rejected"

    def test_copy(self, backend):
        def main(task):
            ga = task.ga
            a = yield from _filled(ga, (10, 14), 6.5)
            b = yield from _filled(ga, (10, 14), 0.0)
            yield from ga.copy_array(a, b)
            got = yield from ga.get_ndarray(b, (0, 9, 0, 13))
            yield from ga.sync()
            return bool(np.all(got == 6.5))

        assert all(run_ga(main, backend=backend))


class TestDot:
    def test_dot_value(self, backend):
        def main(task):
            ga = task.ga
            a = yield from _filled(ga, (16, 16), 2.0)
            b = yield from _filled(ga, (16, 16), 3.0)
            value = yield from ga.dot(a, b)
            yield from ga.sync()
            return value

        results = run_ga(main, backend=backend)
        assert all(r == pytest.approx(16 * 16 * 6.0) for r in results)

    def test_dot_agrees_on_all_ranks(self, backend):
        def main(task):
            ga = task.ga
            a = yield from ga.create((12, 12))
            view = ga.access(a)
            block = ga.distribution(a)
            view[...] = float(task.rank + 1)
            yield from ga.sync()
            value = yield from ga.dot(a, a)
            yield from ga.sync()
            return round(value, 9)

        results = run_ga(main, backend=backend)
        assert len(set(results)) == 1

    def test_dot_matches_numpy(self):
        rng = np.random.default_rng(5)
        data = rng.random((20, 20))

        def main(task):
            ga = task.ga
            h = yield from ga.create((20, 20))
            if task.rank == 0:
                yield from ga.put_ndarray(h, (0, 19, 0, 19), data)
            yield from ga.sync()
            value = yield from ga.dot(h, h)
            yield from ga.sync()
            return value

        results = run_ga(main)
        assert results[0] == pytest.approx(float(np.sum(data * data)))


class TestSymmetrize:
    def test_symmetrize_square(self, backend):
        rng = np.random.default_rng(9)
        data = rng.random((16, 16))

        def main(task):
            ga = task.ga
            h = yield from ga.create((16, 16))
            if task.rank == 0:
                yield from ga.put_ndarray(h, (0, 15, 0, 15), data)
            yield from ga.sync()
            yield from ga.symmetrize(h)
            got = yield from ga.get_ndarray(h, (0, 15, 0, 15))
            yield from ga.sync()
            return got

        results = run_ga(main, backend=backend)
        expect = 0.5 * (data + data.T)
        for got in results:
            assert np.allclose(got, expect)
            assert np.allclose(got, got.T)  # actually symmetric

    def test_symmetrize_rectangular_rejected(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((8, 10))
            yield from ga.sync()
            try:
                yield from ga.symmetrize(h)
            except GaError:
                yield from ga.sync()
                return "rejected"

        assert run_ga(main, backend=backend)[0] == "rejected"
