"""Integration tests: GA sync/fence semantics and global mutexes."""

import numpy as np
import pytest

from repro.errors import GaError
from repro.ga import Section

from .conftest import run_ga


class TestSyncFence:
    def test_sync_makes_stores_visible_everywhere(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((16, 16))
            yield from ga.zero(h)
            # Everyone writes one column, everyone reads all columns.
            col = np.full((16, 1), float(task.rank + 1))
            yield from ga.put_ndarray(h, (0, 15, task.rank, task.rank),
                                      col)
            yield from ga.sync()
            got = yield from ga.get_ndarray(h, (0, 15, 0, 3))
            return [float(got[0, j]) for j in range(4)]

        results = run_ga(main)
        for r in results:
            assert r == [1.0, 2.0, 3.0, 4.0]

    def test_fence_completes_own_stores(self, backend):
        """After fence, this task's put is complete at the target; a
        subsequent put to an overlapping section cannot lose the race
        (section 2.5 / 5.3.2)."""
        def main(task):
            ga = task.ga
            h = yield from ga.create((8, 8))
            yield from ga.zero(h)
            yield from ga.sync()
            if task.rank == 0:
                a = np.full((8, 8), 1.0)
                b = np.full((8, 8), 2.0)
                yield from ga.put_ndarray(h, (0, 7, 0, 7), a)
                yield from ga.fence()
                yield from ga.put_ndarray(h, (0, 7, 0, 7), b)
                yield from ga.fence()
            yield from ga.sync()
            got = yield from ga.get_ndarray(h, (0, 7, 0, 7))
            return bool(np.all(got == 2.0))

        assert all(run_ga(main, backend=backend))

    def test_ordering_only_fence_skips_commutative(self):
        """LAPI backend: a fence for ordering purposes can skip targets
        whose outstanding tail is accumulate (section 5.3.2)."""
        def main(task):
            ga = task.ga
            h = yield from ga.create((64, 64))
            yield from ga.zero(h)
            yield from ga.sync()
            if task.rank == 0:
                data = np.ones((30, 30))
                yield from ga.acc_ndarray(h, (2, 31, 2, 31), data)
                t0 = task.now()
                yield from ga.fence(ordering_only=True)
                fast = task.now() - t0
                t0 = task.now()
                yield from ga.fence()
                slow_or_done = task.now() - t0
                yield from ga.sync()
                return fast
            yield from ga.sync()

        fast = run_ga(main, backend="lapi")[0]
        # The ordering-only fence returned without waiting for the
        # accumulate's completion round trips.
        assert fast < 15.0


class TestMutexes:
    def test_lock_mutual_exclusion(self, backend):
        """Classic non-atomic read-modify-write under a global lock:
        no update may be lost."""
        rounds = 4

        def main(task):
            ga = task.ga
            h = yield from ga.create((4, 4))
            yield from ga.zero(h)
            yield from ga.create_mutexes(1)
            yield from ga.sync()
            for _ in range(rounds):
                yield from ga.lock(0)
                got = yield from ga.get_ndarray(h, (0, 0, 0, 0))
                yield from ga.put_ndarray(h, (0, 0, 0, 0),
                                          got + 1.0)
                yield from ga.fence()
                yield from ga.unlock(0)
            yield from ga.sync()
            final = yield from ga.get_ndarray(h, (0, 0, 0, 0))
            return float(final[0, 0])

        results = run_ga(main, backend=backend)
        assert all(r == 4.0 * rounds for r in results)

    def test_multiple_mutexes_distributed(self, backend):
        def main(task):
            ga = task.ga
            yield from ga.create_mutexes(6)
            yield from ga.sync()
            # Lock/unlock every mutex once; no deadlock, no error.
            for m in range(6):
                yield from ga.lock(m)
                yield from ga.unlock(m)
            yield from ga.sync()
            return "ok"

        assert run_ga(main, backend=backend) == ["ok"] * 4

    def test_unknown_mutex_rejected(self, backend):
        def main(task):
            ga = task.ga
            yield from ga.create_mutexes(1)
            yield from ga.sync()
            try:
                yield from ga.lock(5)
            except GaError:
                yield from ga.sync()
                return "rejected"

        assert run_ga(main, backend=backend)[0] == "rejected"


class TestLocality:
    def test_locate_and_distribution_agree(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((32, 48))
            yield from ga.sync()
            mine = ga.distribution(h)
            pieces = ga.locate(h, mine)
            return pieces == [(task.rank, mine)]

        assert all(run_ga(main, backend=backend))

    def test_nonsquare_grid(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((100, 4))
            yield from ga.sync()
            sizes = [ga.distribution(h, r).size for r in range(4)]
            return sum(sizes)

        assert run_ga(main, backend=backend)[0] == 400
