"""Shared fixtures for Global Arrays tests."""

import pytest

from repro.machine import Cluster
from repro.machine.config import SP_1998


def run_ga(fn, nnodes=4, *, backend="lapi", config=SP_1998, seed=1,
           **kw):
    """Run an SPMD job with GA initialized on ``backend``."""
    cluster = Cluster(nnodes=nnodes, config=config, seed=seed)
    return cluster.run_job(fn, ga_backend=backend, **kw)


@pytest.fixture(params=["lapi", "mpl"])
def backend(request):
    """Run the decorated test on both GA backends."""
    return request.param
