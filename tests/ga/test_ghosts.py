"""Tests for ghost-cell arrays (GA_Create_ghosts / GA_Update_ghosts)."""

import numpy as np
import pytest

from repro.errors import GaError

from .conftest import run_ga


def _global_fill(ga, h, n, m):
    """Fill A[i, j] = 100*i + j through local interior views."""
    arr = ga.array(h)
    block = arr.local_block
    if block is not None:
        view = ga.access(h)
        ii = np.arange(block.ilo, block.ihi + 1)[:, None]
        jj = np.arange(block.jlo, block.jhi + 1)[None, :]
        view[...] = 100.0 * ii + jj


class TestCreateGhosts:
    def test_interior_and_ghost_views(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((16, 16), ghost_width=2)
            block = ga.array(h).local_block
            interior = ga.access(h)
            padded = ga.access_ghosts(h)
            yield from ga.sync()
            return (interior.shape, padded.shape,
                    (block.rows, block.cols))

        for interior, padded, block in run_ga(main, backend=backend):
            assert interior == block
            assert padded == (block[0] + 4, block[1] + 4)

    def test_interior_view_aliases_padded(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((8, 8), ghost_width=1)
            ga.access(h)[0, 0] = 42.0
            padded = ga.access_ghosts(h)
            yield from ga.sync()
            return float(padded[1, 1])

        assert run_ga(main, backend=backend) == [42.0] * 4

    def test_negative_width_rejected(self, backend):
        def main(task):
            try:
                yield from task.ga.create((8, 8), ghost_width=-1)
            except GaError:
                return "rejected"

        assert run_ga(main, backend=backend)[0] == "rejected"

    def test_ghost_view_without_ghosts_rejected(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((8, 8))
            yield from ga.sync()
            try:
                ga.access_ghosts(h)
            except GaError:
                return "rejected"

        assert run_ga(main, backend=backend)[0] == "rejected"


class TestRemoteOpsOnGhostArrays:
    def test_put_get_respect_padding(self, backend):
        """One-sided put/get into a ghost array land in the interior,
        never in the halo (the padded address arithmetic)."""
        data = np.arange(10 * 10, dtype=np.float64).reshape(10, 10)

        def main(task):
            ga = task.ga
            h = yield from ga.create((20, 20), ghost_width=2)
            yield from ga.zero(h)
            if task.rank == 0:
                yield from ga.put_ndarray(h, (5, 14, 5, 14), data)
            yield from ga.sync()
            got = yield from ga.get_ndarray(h, (5, 14, 5, 14))
            halo_clean = True
            if ga.array(h).local_block is not None:
                gv = ga.access_ghosts(h)
                # Halo ring is still zero (update_ghosts never ran).
                interior = ga.access(h)
                halo_sum = float(gv.sum() - interior.sum())
                halo_clean = halo_sum == 0.0
            yield from ga.sync()
            return np.array_equal(got, data) and halo_clean

        assert all(run_ga(main, backend=backend))

    def test_accumulate_on_ghost_array(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((12, 12), ghost_width=1)
            yield from ga.zero(h)
            yield from ga.acc_ndarray(h, (0, 11, 0, 11),
                                      np.ones((12, 12)))
            yield from ga.sync()
            got = yield from ga.get_ndarray(h, (0, 11, 0, 11))
            return bool(np.all(got == task.size))

        assert all(run_ga(main, backend=backend))


class TestUpdateGhosts:
    def test_halo_matches_neighbours(self, backend):
        n = 16

        def main(task):
            ga = task.ga
            h = yield from ga.create((n, n), ghost_width=1)
            _global_fill(ga, h, n, n)
            yield from ga.update_ghosts(h)
            block = ga.array(h).local_block
            ok = True
            if block is not None:
                gv = ga.access_ghosts(h)
                for pi in range(-1, block.rows + 1):
                    for pj in range(-1, block.cols + 1):
                        gi = block.ilo + pi
                        gj = block.jlo + pj
                        if not (0 <= gi < n and 0 <= gj < n):
                            continue  # outside: untouched
                        expect = 100.0 * gi + gj
                        if gv[pi + 1, pj + 1] != expect:
                            ok = False
            yield from ga.sync()
            return ok

        assert all(run_ga(main, backend=backend))

    def test_wide_halo(self):
        n, w = 24, 3

        def main(task):
            ga = task.ga
            h = yield from ga.create((n, n), ghost_width=w)
            _global_fill(ga, h, n, n)
            yield from ga.update_ghosts(h)
            block = ga.array(h).local_block
            gv = ga.access_ghosts(h)
            # Check the far corner of the halo where it exists.
            gi = block.ilo - w
            gj = block.jlo - w
            ok = True
            if gi >= 0 and gj >= 0:
                ok = gv[0, 0] == 100.0 * gi + gj
            yield from ga.sync()
            return ok

        assert all(run_ga(main))

    def test_update_without_ghosts_rejected(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((8, 8))
            yield from ga.sync()
            try:
                yield from ga.update_ghosts(h)
            except GaError:
                yield from ga.sync()
                return "rejected"

        assert run_ga(main, backend=backend)[0] == "rejected"

    def test_repeated_updates_track_changes(self):
        def main(task):
            ga = task.ga
            h = yield from ga.create((8, 8), ghost_width=1)
            yield from ga.fill(h, 1.0)
            yield from ga.update_ghosts(h)
            first = None
            block = ga.array(h).local_block
            gv = ga.access_ghosts(h)
            if block.ihi < 7:
                first = float(gv[-1, 1])
            yield from ga.fill(h, 2.0)
            yield from ga.update_ghosts(h)
            second = None
            if block.ihi < 7:
                second = float(gv[-1, 1])
            yield from ga.sync()
            return first, second

        results = run_ga(main)
        for first, second in results:
            if first is not None:
                assert (first, second) == (1.0, 2.0)
