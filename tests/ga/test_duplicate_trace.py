"""Tests for GA_Duplicate and protocol-level tracing."""

import numpy as np
import pytest

from repro.machine import Cluster
from repro.sim import Tracer

from .conftest import run_ga


class TestDuplicate:
    def test_duplicate_matches_geometry(self, backend):
        def main(task):
            ga = task.ga
            a = yield from ga.create((24, 16), name="orig",
                                     ghost_width=1)
            b = yield from ga.duplicate(a)
            src, dup = ga.array(a), ga.array(b)
            yield from ga.sync()
            return (src.dims == dup.dims,
                    src.dtype == dup.dtype,
                    src.dist == dup.dist,
                    src.ghost_width == dup.ghost_width,
                    a != b)

        for checks in run_ga(main, backend=backend):
            assert all(checks)

    def test_duplicate_then_copy(self, backend):
        def main(task):
            ga = task.ga
            a = yield from ga.create((12, 12))
            yield from ga.fill(a, 7.5)
            b = yield from ga.duplicate(a)
            yield from ga.copy_array(a, b)
            got = yield from ga.get_ndarray(b, (0, 11, 0, 11))
            yield from ga.sync()
            return bool(np.all(got == 7.5))

        assert all(run_ga(main, backend=backend))

    def test_duplicate_contents_independent(self, backend):
        def main(task):
            ga = task.ga
            a = yield from ga.create((8, 8))
            yield from ga.fill(a, 1.0)
            b = yield from ga.duplicate(a)
            yield from ga.fill(b, 2.0)
            ga_a = yield from ga.get_ndarray(a, (0, 7, 0, 7))
            yield from ga.sync()
            return bool(np.all(ga_a == 1.0))

        assert all(run_ga(main, backend=backend))


class TestProtocolTracing:
    def test_dispatcher_events_recorded(self):
        tracer = Tracer(categories=["lapi"])

        def main(task):
            lapi = task.lapi
            buf = task.memory.malloc(64)
            tgt = lapi.counter()
            yield from lapi.gfence()
            if task.rank == 0:
                src = task.memory.malloc(64)
                yield from lapi.put(1, 64, buf, src, tgt_cntr=tgt.id)
                yield from lapi.fence()
            else:
                yield from lapi.waitcntr(tgt, 1)
            yield from lapi.gfence()

        Cluster(nnodes=2, trace=tracer).run_job(main, stacks=("lapi",))
        assert len(tracer.records) > 0
        text = " ".join(r.message for r in tracer.records)
        assert "lapi.data" in text  # the put's data packet
        assert "lapi.barrier" in text  # gfence tokens
        # Both ends dispatched something.
        sources = {r.source for r in tracer.records}
        assert {"lapi0", "lapi1"} <= sources

    def test_tracing_off_by_default_costs_nothing(self):
        def main(task):
            lapi = task.lapi
            yield from lapi.gfence()
            return task.now()

        t_untraced = Cluster(nnodes=2).run_job(main,
                                               stacks=("lapi",))[0]
        tracer = Tracer(categories=["lapi"])
        t_traced = Cluster(nnodes=2, trace=tracer).run_job(
            main, stacks=("lapi",))[0]
        assert t_traced == t_untraced  # identical virtual timings
