"""Integration tests: GA put/get/acc on both backends."""

import numpy as np
import pytest

from repro.errors import GaError
from repro.ga import Section
from repro.machine.config import SP_1998

from .conftest import run_ga


class TestCreateDestroy:
    def test_create_distributes(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((32, 32), name="A")
            mine = ga.distribution(h)
            pieces = ga.locate(h, (0, 31, 0, 31))
            yield from ga.sync()
            return mine.size, len(pieces)

        results = run_ga(main, backend=backend)
        assert sum(r[0] for r in results) == 32 * 32
        assert all(r[1] == 4 for r in results)

    def test_access_is_zero_copy_view(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((16, 16))
            view = ga.access(h)
            view[...] = task.rank + 1.0
            yield from ga.sync()
            # Read my own block through the global interface.
            block = ga.distribution(h)
            got = yield from ga.get_ndarray(h, block)
            return bool(np.all(got == task.rank + 1.0))

        assert all(run_ga(main, backend=backend))

    def test_destroy_then_use_rejected(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((8, 8))
            yield from ga.destroy(h)
            try:
                yield from ga.get_ndarray(h, (0, 0, 0, 0))
            except GaError:
                return "rejected"

        assert run_ga(main, backend=backend) == ["rejected"] * 4

    def test_non8byte_dtype_rejected(self, backend):
        def main(task):
            try:
                yield from task.ga.create((8, 8), dtype=np.float32)
            except GaError:
                return "rejected"

        assert run_ga(main, backend=backend)[0] == "rejected"


class TestPutGet:
    def test_put_get_roundtrip_cross_owner(self, backend):
        data = np.arange(14 * 10, dtype=np.float64).reshape(14, 10)

        def main(task):
            ga = task.ga
            h = yield from ga.create((40, 40))
            yield from ga.zero(h)
            sec = (5, 18, 7, 16)  # spans all four owners
            if task.rank == 0:
                yield from ga.put_ndarray(h, sec, data)
            yield from ga.sync()
            got = yield from ga.get_ndarray(h, sec)
            return np.array_equal(got, data)

        assert all(run_ga(main, backend=backend))

    def test_single_element(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((20, 20))
            yield from ga.zero(h)
            if task.rank == 0:
                yield from ga.put_ndarray(h, (19, 19, 19, 19),
                                          [[42.5]])
            yield from ga.sync()
            got = yield from ga.get_ndarray(h, (19, 19, 19, 19))
            return float(got[0, 0])

        assert run_ga(main, backend=backend) == [42.5] * 4

    def test_full_column_1d_request(self, backend):
        """The paper's contiguous '1-D' case."""
        def main(task):
            ga = task.ga
            h = yield from ga.create((64, 8))
            yield from ga.zero(h)
            col = np.arange(64, dtype=np.float64).reshape(64, 1)
            if task.rank == 0:
                yield from ga.put_ndarray(h, (0, 63, 5, 5), col)
            yield from ga.sync()
            got = yield from ga.get_ndarray(h, (0, 63, 5, 5))
            return np.array_equal(got, col)

        assert all(run_ga(main, backend=backend))

    def test_large_strided_2d(self, backend):
        """Above the strided-RMC threshold (per-column protocol)."""
        cfg_kw = {}
        n = 300  # 300x300 doubles = 720 KB > 512 KB threshold

        def main(task):
            ga = task.ga
            h = yield from ga.create((512, 512))
            yield from ga.zero(h)
            rng = np.random.default_rng(7)
            data = rng.random((n, n))
            if task.rank == 0:
                yield from ga.put_ndarray(h, (100, 100 + n - 1,
                                              50, 50 + n - 1), data)
            yield from ga.sync()
            if task.rank == 3:
                got = yield from ga.get_ndarray(
                    h, (100, 100 + n - 1, 50, 50 + n - 1))
                yield from ga.sync()
                return bool(np.array_equal(got, data))
            yield from ga.sync()
            return True

        assert all(run_ga(main, backend=backend))

    def test_medium_strided_am_chunked(self, backend):
        """Below the threshold: pipelined-AM chunk protocol."""
        def main(task):
            ga = task.ga
            h = yield from ga.create((128, 128))
            yield from ga.zero(h)
            data = np.arange(50 * 50, dtype=np.float64).reshape(50, 50)
            if task.rank == 1:
                yield from ga.put_ndarray(h, (10, 59, 10, 59), data)
            yield from ga.sync()
            got = yield from ga.get_ndarray(h, (10, 59, 10, 59))
            return np.array_equal(got, data)

        assert all(run_ga(main, backend=backend))

    def test_section_out_of_bounds(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((8, 8))
            try:
                yield from ga.get_ndarray(h, (0, 8, 0, 7))
            except GaError:
                yield from ga.sync()
                return "rejected"

        assert run_ga(main, backend=backend)[0] == "rejected"

    def test_everyone_writes_own_block_reads_neighbor(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((32, 32))
            block = ga.distribution(h)
            fill = np.full(block.shape, float(task.rank + 1))
            yield from ga.put_ndarray(h, block, fill)
            yield from ga.sync()
            peer = (task.rank + 1) % task.size
            pblock = ga.distribution(h, peer)
            got = yield from ga.get_ndarray(h, pblock)
            return bool(np.all(got == peer + 1))

        assert all(run_ga(main, backend=backend))


class TestAccumulate:
    def test_concurrent_accumulate_no_lost_updates(self, backend):
        """Every rank accumulates into the same section; the result is
        the exact sum (atomicity, section 5.3.3)."""
        def main(task):
            ga = task.ga
            h = yield from ga.create((24, 24))
            yield from ga.zero(h)
            ones = np.ones((24, 24))
            for _ in range(3):
                yield from ga.acc_ndarray(h, (0, 23, 0, 23), ones)
            yield from ga.sync()
            got = yield from ga.get_ndarray(h, (0, 23, 0, 23))
            return bool(np.all(got == 3.0 * task.size))

        assert all(run_ga(main, backend=backend))

    def test_alpha_scaling(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((10, 10))
            yield from ga.zero(h)
            if task.rank == 0:
                yield from ga.acc_ndarray(h, (0, 9, 0, 9),
                                          np.ones((10, 10)), alpha=2.5)
            yield from ga.sync()
            got = yield from ga.get_ndarray(h, (3, 3, 3, 3))
            return float(got[0, 0])

        assert run_ga(main, backend=backend) == [2.5] * 4

    def test_large_accumulate(self, backend):
        """Accumulate above the large-chunk threshold."""
        n = 120  # 120*120*8 = 115 KB

        def main(task):
            ga = task.ga
            h = yield from ga.create((256, 256))
            yield from ga.zero(h)
            data = np.ones((n, n))
            if task.rank == 2:
                yield from ga.acc_ndarray(h, (10, 10 + n - 1,
                                              10, 10 + n - 1), data)
            yield from ga.sync()
            got = yield from ga.get_ndarray(h, (10, 10 + n - 1,
                                                10, 10 + n - 1))
            return bool(np.all(got == 1.0))

        assert all(run_ga(main, backend=backend))


class TestScatterGather:
    def test_scatter_then_gather(self, backend):
        points = [(0, 0), (7, 3), (15, 15), (3, 12), (9, 9)]

        def main(task):
            ga = task.ga
            h = yield from ga.create((16, 16))
            yield from ga.zero(h)
            if task.rank == 0:
                vals = [1.5, 2.5, 3.5, 4.5, 5.5]
                yield from ga.scatter(h, points, vals)
            yield from ga.sync()
            got = yield from ga.gather(h, points)
            return got.tolist()

        results = run_ga(main, backend=backend)
        assert results[1] == [1.5, 2.5, 3.5, 4.5, 5.5]

    def test_gather_many_points_chunked(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((40, 40))
            view = ga.access(h)
            block = ga.distribution(h)
            for jj in range(block.cols):
                for ii in range(block.rows):
                    view[ii, jj] = (block.ilo + ii) * 100 + block.jlo + jj
            yield from ga.sync()
            points = [(i, (i * 7) % 40) for i in range(40)]
            got = yield from ga.gather(h, points)
            expect = [i * 100 + (i * 7) % 40 for i in range(40)]
            return got.tolist() == expect

        assert all(run_ga(main, backend=backend))

    def test_scatter_validation(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((8, 8))
            try:
                yield from ga.scatter(h, [(9, 0)], [1.0])
            except GaError:
                yield from ga.sync()
                return "rejected"

        assert run_ga(main, backend=backend)[0] == "rejected"


class TestReadInc:
    def test_read_inc_counts_exactly(self, backend):
        per_rank = 5

        def main(task):
            ga = task.ga
            h = yield from ga.create((4, 4), dtype=np.int64)
            yield from ga.zero(h)
            yield from ga.sync()
            got = []
            for _ in range(per_rank):
                prev = yield from ga.read_inc(h, (2, 2), 1)
                got.append(prev)
            yield from ga.sync()
            final = yield from ga.get_ndarray(h, (2, 2, 2, 2))
            return got, int(final[0, 0])

        results = run_ga(main, backend=backend)
        assert all(r[1] == 4 * per_rank for r in results)
        fetched = sorted(v for r in results for v in r[0])
        assert fetched == list(range(4 * per_rank))

    def test_read_inc_requires_int64(self, backend):
        def main(task):
            ga = task.ga
            h = yield from ga.create((4, 4))  # float64
            try:
                yield from ga.read_inc(h, (0, 0))
            except GaError:
                yield from ga.sync()
                return "rejected"

        assert run_ga(main, backend=backend)[0] == "rejected"
