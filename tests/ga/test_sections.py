"""Unit + property tests for GA section algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GaError
from repro.ga import Section


def sections(max_extent=40):
    """Strategy generating valid sections within a max extent."""
    def build(draw):
        ilo = draw(st.integers(0, max_extent - 1))
        ihi = draw(st.integers(ilo, max_extent - 1))
        jlo = draw(st.integers(0, max_extent - 1))
        jhi = draw(st.integers(jlo, max_extent - 1))
        return Section(ilo, ihi, jlo, jhi)
    return st.composite(build)()


class TestBasics:
    def test_shape_and_size(self):
        s = Section(2, 5, 1, 3)
        assert s.shape == (4, 3)
        assert s.size == 12
        assert s.rows == 4 and s.cols == 3

    def test_of_tuple(self):
        s = Section.of((0, 1, 2, 3))
        assert s == Section(0, 1, 2, 3)
        assert Section.of(s) is s

    def test_inverted_rejected(self):
        with pytest.raises(GaError):
            Section(5, 2, 0, 0)
        with pytest.raises(GaError):
            Section(0, 0, 3, 1)

    def test_negative_rejected(self):
        with pytest.raises(GaError):
            Section(-1, 2, 0, 0)

    def test_single_column_flag(self):
        assert Section(0, 9, 4, 4).is_single_column
        assert not Section(0, 9, 4, 5).is_single_column

    def test_str(self):
        assert str(Section(1, 2, 3, 4)) == "(1:2,3:4)"


class TestAlgebra:
    def test_contains(self):
        outer = Section(0, 9, 0, 9)
        assert outer.contains(Section(2, 5, 3, 7))
        assert outer.contains(outer)
        assert not outer.contains(Section(2, 10, 3, 7))

    def test_intersect(self):
        a = Section(0, 5, 0, 5)
        b = Section(3, 8, 4, 9)
        assert a.intersect(b) == Section(3, 5, 4, 5)

    def test_disjoint_intersect_none(self):
        a = Section(0, 2, 0, 2)
        b = Section(5, 7, 5, 7)
        assert a.intersect(b) is None
        assert not a.overlaps(b)

    def test_columns_decomposition(self):
        s = Section(1, 4, 2, 4)
        cols = list(s.columns())
        assert len(cols) == 3
        assert all(c.is_single_column for c in cols)
        assert cols[0] == Section(1, 4, 2, 2)
        assert cols[-1] == Section(1, 4, 4, 4)

    def test_relative_to(self):
        origin = Section(10, 19, 20, 29)
        piece = Section(12, 15, 21, 23)
        rel = piece.relative_to(origin)
        assert rel == Section(2, 5, 1, 3)

    def test_relative_to_outside_rejected(self):
        with pytest.raises(GaError):
            Section(0, 5, 0, 5).relative_to(Section(1, 3, 1, 3))


class TestProperties:
    @given(sections(), sections())
    def test_intersection_commutes(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(sections(), sections())
    def test_intersection_contained_in_both(self, a, b):
        c = a.intersect(b)
        if c is not None:
            assert a.contains(c)
            assert b.contains(c)

    @given(sections())
    def test_self_intersection_identity(self, s):
        assert s.intersect(s) == s

    @given(sections())
    def test_columns_partition_size(self, s):
        cols = list(s.columns())
        assert sum(c.size for c in cols) == s.size
        # Disjoint and ordered.
        for x, y in zip(cols, cols[1:]):
            assert not x.overlaps(y)
            assert x.jhi < y.jlo

    @given(sections(), sections())
    def test_relative_roundtrip(self, outer, inner):
        probe = outer.intersect(inner)
        if probe is None:
            return
        rel = probe.relative_to(outer)
        # Re-basing back recovers the original coordinates.
        back = Section(rel.ilo + outer.ilo, rel.ihi + outer.ilo,
                       rel.jlo + outer.jlo, rel.jhi + outer.jlo)
        assert back == probe
