"""Unit + property tests for GA block distribution."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GaError
from repro.ga import BlockDistribution, Section, process_grid


class TestProcessGrid:
    def test_square_counts(self):
        assert process_grid(4, (100, 100)) == (2, 2)
        assert process_grid(16, (100, 100)) == (4, 4)

    def test_prime_count(self):
        pr, pc = process_grid(7, (100, 100))
        assert pr * pc == 7

    def test_single_task(self):
        assert process_grid(1, (10, 10)) == (1, 1)

    def test_tall_array_prefers_row_split(self):
        pr, pc = process_grid(4, (1000, 10))
        assert pr >= pc

    def test_wide_array_prefers_col_split(self):
        pr, pc = process_grid(4, (10, 1000))
        assert pc >= pr

    def test_oversubscribed_array_gets_empty_blocks(self):
        # More tasks than elements: excess ranks own nothing (this is
        # how tiny shared-counter arrays distribute).
        dist = BlockDistribution.create((1, 1), 4)
        blocks = [dist.block(r) for r in range(4)]
        assert sum(1 for b in blocks if b is not None) == 1
        assert dist.owner_of(0, 0) in range(4)
        assert sum(b.size for b in blocks if b is not None) == 1

    def test_invalid_count(self):
        with pytest.raises(GaError):
            process_grid(0, (10, 10))


class TestBlocks:
    def test_blocks_partition_array(self):
        dist = BlockDistribution.create((10, 12), 4)
        seen = set()
        for rank, block in dist.blocks():
            for i in range(block.ilo, block.ihi + 1):
                for j in range(block.jlo, block.jhi + 1):
                    assert (i, j) not in seen
                    seen.add((i, j))
        assert len(seen) == 120

    def test_owner_of_agrees_with_blocks(self):
        dist = BlockDistribution.create((9, 7), 4)
        for rank, block in dist.blocks():
            assert dist.owner_of(block.ilo, block.jlo) == rank
            assert dist.owner_of(block.ihi, block.jhi) == rank

    def test_owner_out_of_range(self):
        dist = BlockDistribution.create((4, 4), 2)
        with pytest.raises(GaError):
            dist.owner_of(4, 0)

    def test_locate_covers_section_exactly(self):
        dist = BlockDistribution.create((20, 20), 4)
        sec = Section(3, 16, 2, 18)
        pieces = dist.locate(sec)
        total = sum(p.size for _, p in pieces)
        assert total == sec.size
        for _, p in pieces:
            assert sec.contains(p)

    def test_locate_single_owner(self):
        dist = BlockDistribution.create((20, 20), 4)
        block0 = dist.block(0)
        inner = Section(block0.ilo, block0.ilo + 1, block0.jlo,
                        block0.jlo + 1)
        pieces = dist.locate(inner)
        assert pieces == [(0, inner)]

    def test_locate_out_of_range(self):
        dist = BlockDistribution.create((10, 10), 2)
        with pytest.raises(GaError):
            dist.locate(Section(0, 10, 0, 5))

    def test_rank_coords_roundtrip(self):
        dist = BlockDistribution.create((16, 16), 8)
        for rank in range(8):
            pi, pj = dist.coords(rank)
            assert dist.rank_of(pi, pj) == rank


class TestProperties:
    @given(st.integers(1, 12), st.integers(4, 50), st.integers(4, 50))
    def test_partition_complete_and_disjoint(self, ntasks, n, m):
        try:
            dist = BlockDistribution.create((n, m), ntasks)
        except GaError:
            return  # undistributable combination
        counted = 0
        for rank in range(dist.ntasks):
            block = dist.block(rank)
            if block is not None:
                counted += block.size
        assert counted == n * m

    @given(st.integers(1, 12), st.integers(4, 40), st.integers(4, 40),
           st.data())
    def test_owner_of_consistent_with_block(self, ntasks, n, m, data):
        try:
            dist = BlockDistribution.create((n, m), ntasks)
        except GaError:
            return
        i = data.draw(st.integers(0, n - 1))
        j = data.draw(st.integers(0, m - 1))
        owner = dist.owner_of(i, j)
        assert dist.block(owner).contains_point(i, j)

    @given(st.integers(1, 8), st.data())
    def test_locate_is_exact_cover(self, ntasks, data):
        n, m = 24, 24
        try:
            dist = BlockDistribution.create((n, m), ntasks)
        except GaError:
            return
        ilo = data.draw(st.integers(0, n - 1))
        ihi = data.draw(st.integers(ilo, n - 1))
        jlo = data.draw(st.integers(0, m - 1))
        jhi = data.draw(st.integers(jlo, m - 1))
        sec = Section(ilo, ihi, jlo, jhi)
        pieces = dist.locate(sec)
        # Exact cover: sizes add up and pieces are pairwise disjoint.
        assert sum(p.size for _, p in pieces) == sec.size
        for a in range(len(pieces)):
            for b in range(a + 1, len(pieces)):
                assert not pieces[a][1].overlaps(pieces[b][1])
